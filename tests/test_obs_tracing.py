"""Span tracing, observation context, chrome export and log setup."""

import json
import logging
import threading

from repro.obs import (
    Observation,
    Span,
    Tracer,
    chrome_trace_events,
    configure_logging,
    current,
    current_span,
    enabled,
    observe,
    span,
    write_chrome_trace,
)
from repro.obs.export import PE_PID, SPAN_PID


class TestTracer:
    def test_nesting_follows_call_stack(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            assert current_span() is outer
            with tr.span("inner") as inner:
                assert current_span() is inner
                assert inner.parent_id == outer.span_id
            assert current_span() is outer
        assert current_span() is None
        names = [sp.name for sp in tr.finished()]
        assert names == ["inner", "outer"]  # inner closes first

    def test_attrs_and_duration(self):
        ticks = iter([1.0, 3.5])
        tr = Tracer(clock=lambda: next(ticks))
        with tr.span("work", engine="event") as sp:
            sp.set_attr("extra", 7)
        assert sp.duration == 2.5
        assert sp.attrs == {"engine": "event", "extra": 7}

    def test_threads_get_independent_stacks(self):
        tr = Tracer()
        seen = {}

        def worker(name):
            with tr.span(name) as sp:
                seen[name] = sp.parent_id

        with tr.span("main"):
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # worker threads start with a fresh context: no parent
        assert all(pid is None for pid in seen.values())

    def test_manual_spans_do_not_touch_context(self):
        tr = Tracer()
        sp = tr.start_span("job", graph_id="g0")
        assert current_span() is None
        assert len(tr) == 0  # not finished yet
        tr.end_span(sp)
        assert tr.finished() == [sp]

    def test_max_spans_bounds_history(self):
        tr = Tracer(max_spans=2)
        for i in range(5):
            with tr.span(f"s{i}"):
                pass
        assert [sp.name for sp in tr.finished()] == ["s3", "s4"]

    def test_ingest_remaps_ids_and_preserves_structure(self):
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        service = Tracer()
        root = service.start_span("job")
        adopted = service.ingest(worker.finished(), parent=root)
        by_name = {sp.name: sp for sp in adopted}
        assert by_name["outer"].parent_id == root.span_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        # ids were remapped into the service tracer's space: unique, and
        # never colliding with ids the service tracer already handed out
        adopted_ids = {sp.span_id for sp in adopted}
        assert len(adopted_ids) == len(adopted)
        assert root.span_id not in adopted_ids

    def test_ingest_align_shifts_times(self):
        spans = [
            Span("a", span_id=1, start=100.0, end=101.0),
            Span("b", span_id=2, parent_id=1, start=100.25, end=100.75),
        ]
        tr = Tracer()
        adopted = tr.ingest(spans, align_to=5.0)
        assert adopted[0].start == 5.0
        assert adopted[0].end == 6.0
        assert adopted[1].start == 5.25
        assert adopted[1].duration == 0.5

    def test_ingest_empty_is_noop(self):
        tr = Tracer()
        assert tr.ingest([]) == []


class TestObservationContext:
    def test_disabled_by_default(self):
        assert current() is None
        assert not enabled()

    def test_observe_scopes_the_context(self):
        with observe() as ob:
            assert current() is ob
            assert enabled()
        assert current() is None

    def test_module_span_is_noop_when_disabled(self):
        with span("anything") as sp:
            assert sp is None

    def test_module_span_records_when_enabled(self):
        with observe() as ob:
            with span("work", level=2) as sp:
                assert sp is not None
        assert [s.name for s in ob.tracer.finished()] == ["work"]

    def test_level_accumulators(self):
        ob = Observation()
        ob.level_add(1, tasks=2, elements=10)
        ob.level_add(1, tasks=1, comparisons=5)
        ob.level_add(2, tasks=4)
        assert ob.levels[1] == {
            "tasks": 3.0, "elements": 10.0, "comparisons": 5.0,
        }
        assert ob.levels[2]["tasks"] == 4.0

    def test_stage_accumulation(self):
        ob = Observation()
        ob.add_stage("prefix", 0.25)
        ob.add_stage("prefix", 0.25)
        assert ob.stages == {"prefix": 0.5}

    def test_empty_tracer_and_registry_are_kept(self):
        # regression: empty Tracer/MetricsRegistry are falsy (len() == 0),
        # so `tracer or Tracer()` silently replaced the caller's instances
        from repro.obs import MetricsRegistry

        tr = Tracer(max_spans=5)
        reg = MetricsRegistry()
        ob = Observation(registry=reg, tracer=tr)
        assert ob.tracer is tr
        assert ob.registry is reg


class TestChromeExport:
    def _spans(self):
        return [
            Span("job", span_id=1, start=10.0, end=10.5),
            Span("engine", span_id=2, parent_id=1, start=10.1, end=10.4),
        ]

    def test_span_events(self):
        events = chrome_trace_events(self._spans())
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "repro spans"
        xs = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["job", "engine"]
        job = xs[0]
        assert job["pid"] == SPAN_PID
        assert job["ts"] == 0.0  # origin-relative
        assert job["dur"] == 500_000.0  # 0.5s in microseconds
        # same tree -> same lane
        assert xs[0]["tid"] == xs[1]["tid"]

    def test_pe_events_go_to_second_pid(self):
        events = chrome_trace_events(
            self._spans(), pe_events=[(0, 1, 100.0, 140.0)]
        )
        pe = [e for e in events if e.get("cat") == "pe"]
        assert len(pe) == 1
        assert pe[0]["pid"] == PE_PID
        assert pe[0]["tid"] == 0
        assert pe[0]["name"] == "L1"
        assert pe[0]["ts"] == 100.0  # cycles pass through verbatim
        assert pe[0]["dur"] == 40.0

    def test_concurrent_roots_get_separate_lanes(self):
        spans = [
            Span("a", span_id=1, start=0.0, end=1.0),
            Span("b", span_id=2, start=0.5, end=1.5),
        ]
        events = [e for e in chrome_trace_events(spans) if e["ph"] == "X"]
        assert events[0]["tid"] != events[1]["tid"]

    def test_non_json_attrs_are_stringified(self):
        sp = Span("s", span_id=1, attrs={"obj": object(), "n": 3})
        (ev,) = [
            e for e in chrome_trace_events([sp]) if e["ph"] == "X"
        ]
        assert isinstance(ev["args"]["obj"], str)
        assert ev["args"]["n"] == 3
        json.dumps(ev)  # must serialise

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._spans(), [(1, 2, 0.0, 8.0)])
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        cats = {e.get("cat") for e in data["traceEvents"]}
        assert "span" in cats and "pe" in cats


class TestLogSetup:
    def test_default_level_is_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert configure_logging() == logging.WARNING

    def test_verbose_flags(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert configure_logging(verbose=1) == logging.INFO
        assert configure_logging(verbose=2) == logging.DEBUG

    def test_env_var_by_name_and_number(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        assert configure_logging() == logging.DEBUG
        monkeypatch.setenv("REPRO_LOG", "15")
        assert configure_logging() == 15
        monkeypatch.setenv("REPRO_LOG", "not-a-level")
        assert configure_logging() == logging.WARNING

    def test_repeated_calls_do_not_stack_handlers(self):
        configure_logging()
        configure_logging()
        logger = logging.getLogger("repro")
        flagged = [
            h for h in logger.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(flagged) == 1

    def test_messages_reach_the_stream(self, monkeypatch):
        import io

        monkeypatch.delenv("REPRO_LOG", raising=False)
        buf = io.StringIO()
        configure_logging(verbose=1, stream=buf)
        logging.getLogger("repro.service.service").info("hello worker")
        assert "hello worker" in buf.getvalue()
