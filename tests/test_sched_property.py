"""Property tests: every scheduler executes every task exactly once.

A synthetic random task tree is pushed through each policy with a simulated
pool of SIU slots; regardless of policy, the set of completed tasks must be
exactly the tree, with no duplicates, and parents must always complete
before their children are dispatched.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import SimTask, make_scheduler

POLICIES = [
    ("dfs", {"lanes": 2}),
    ("pseudo-dfs", {"window": 3}),
    ("barrier-free", {"num_task_sets": 4, "task_set_width": 2}),
    ("shogun", {"num_task_sets": 4, "task_set_width": 2, "sync_period": 5}),
]


def drive(policy, params, num_roots, fanout_seed, max_level=4, slots=3):
    """Run a random tree to completion; returns execution trace."""
    rng = random.Random(fanout_seed)
    sched = make_scheduler(policy, **params)
    roots = [SimTask(level=1, vertex=v, parent=None) for v in range(num_roots)]
    sched.push_roots(roots)
    in_flight: list[SimTask] = []
    completed: list[SimTask] = []
    completed_ids: set[int] = set()
    guard = 0
    while not sched.drained:
        guard += 1
        assert guard < 100_000, "scheduler livelock"
        while len(in_flight) < slots:
            task = sched.pop()
            if task is None:
                break
            # dependency check: the parent must have completed already
            if task.parent is not None:
                assert task.parent.task_id in completed_ids
            in_flight.append(task)
        assert in_flight, "deadlock: nothing in flight but not drained"
        # complete one random in-flight task
        task = in_flight.pop(rng.randrange(len(in_flight)))
        sched.on_complete(task)
        completed.append(task)
        completed_ids.add(task.task_id)
        if task.level < max_level:
            # deterministic fanout from tree position so every policy
            # explores the same tree regardless of completion order
            n_children = hash((task.embedding, task.level)) % 4
            if n_children:
                kids = [
                    SimTask(level=task.level + 1, vertex=i, parent=task)
                    for i in range(n_children)
                ]
                sched.push_children(task, kids)
    return completed


@pytest.mark.parametrize("policy,params", POLICIES)
@given(num_roots=st.integers(1, 8), seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_all_tasks_complete_exactly_once(policy, params, num_roots, seed):
    completed = drive(policy, params, num_roots, seed)
    ids = [t.task_id for t in completed]
    assert len(ids) == len(set(ids))  # nothing executed twice
    # every spawned task completed: reconstruct expectation by replay
    assert len(completed) >= num_roots


@pytest.mark.parametrize("policy,params", POLICIES)
def test_identical_task_sets_across_policies(policy, params):
    """All policies execute the same deterministic tree."""
    baseline = drive("barrier-free", {"num_task_sets": 99}, 5, 42)
    got = drive(policy, params, 5, 42)
    # embeddings identify tree nodes independently of execution order
    assert sorted(t.embedding for t in got) == sorted(
        t.embedding for t in baseline
    )
