"""Tests for the graph algorithm toolbox (k-core, components, clustering)."""

import numpy as np
import pytest

from repro.graph import CSRGraph, erdos_renyi
from repro.graph.algorithms import (
    connected_components,
    core_numbers,
    degeneracy,
    degeneracy_order,
    global_clustering,
    k_core,
    largest_component,
    relabeled_by_degeneracy,
)


def _oracle_core_numbers(graph: CSRGraph) -> list[int]:
    """Naive iterative peeling oracle."""
    n = graph.num_vertices
    alive = [True] * n
    deg = [graph.degree(v) for v in range(n)]
    core = [0] * n
    k = 0
    remaining = n
    while remaining:
        progressed = True
        while progressed:
            progressed = False
            for v in range(n):
                if alive[v] and deg[v] <= k:
                    core[v] = k
                    alive[v] = False
                    remaining -= 1
                    progressed = True
                    for w in graph.neighbors(v):
                        w = int(w)
                        if alive[w]:
                            deg[w] -= 1
        k += 1
    return core


class TestCoreNumbers:
    def test_triangle_with_tail(self):
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 2), (0, 3)])
        core = core_numbers(g)
        assert core.tolist() == [2, 2, 2, 1]

    def test_clique(self):
        from itertools import combinations

        g = CSRGraph.from_edges(5, list(combinations(range(5), 2)))
        assert core_numbers(g).tolist() == [4] * 5

    def test_against_oracle_random(self):
        for seed in range(5):
            g = erdos_renyi(40, 5.0, seed=seed)
            assert core_numbers(g).tolist() == _oracle_core_numbers(g)

    def test_empty(self):
        g = CSRGraph.empty(3)
        assert core_numbers(g).tolist() == [0, 0, 0]

    def test_degeneracy_value(self):
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 2), (0, 3)])
        assert degeneracy(g) == 2


class TestDegeneracyOrder:
    def test_is_permutation(self, small_er):
        order = degeneracy_order(small_er)
        assert sorted(order.tolist()) == list(range(small_er.num_vertices))

    def test_peels_low_core_first(self):
        g = CSRGraph.from_edges(5, [(0, 1), (0, 2), (1, 2), (0, 3), (3, 4)])
        order = degeneracy_order(g).tolist()
        core = core_numbers(g)
        cores_in_order = [int(core[v]) for v in order]
        assert cores_in_order == sorted(cores_in_order)

    def test_relabel_preserves_counts(self, small_er):
        from repro.patterns import PATTERNS, build_plan, count_embeddings

        relabeled = relabeled_by_degeneracy(small_er)
        plan = build_plan(PATTERNS["3CF"])
        assert (
            count_embeddings(relabeled, plan).embeddings
            == count_embeddings(small_er, plan).embeddings
        )


class TestKCore:
    def test_extracts_dense_part(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]
        g = CSRGraph.from_edges(5, edges)
        core2 = k_core(g, 2)
        assert core2.num_vertices == 3
        assert core2.num_edges == 3

    def test_k_zero_is_everything(self, small_er):
        assert k_core(small_er, 0).num_vertices == small_er.num_vertices


class TestComponents:
    def test_two_components(self):
        g = CSRGraph.from_edges(5, [(0, 1), (2, 3), (3, 4)])
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3] == comp[4]
        assert comp[0] != comp[2]

    def test_isolated_vertices_get_ids(self):
        g = CSRGraph.empty(3)
        assert len(set(connected_components(g).tolist())) == 3

    def test_largest_component(self):
        g = CSRGraph.from_edges(6, [(0, 1), (2, 3), (3, 4), (4, 2)])
        big = largest_component(g)
        assert big.num_vertices == 3
        assert big.num_edges == 3


class TestClustering:
    def test_triangle_is_one(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert global_clustering(g) == pytest.approx(1.0)

    def test_star_is_zero(self):
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert global_clustering(g) == 0.0

    def test_bounded(self, small_er):
        c = global_clustering(small_er)
        assert 0.0 <= c <= 1.0


class TestOptimizer:
    def test_optimized_plans_stay_correct(self, small_er):
        from repro.patterns import PATTERNS, build_plan, count_embeddings
        from repro.patterns.optimizer import optimize_plan

        for name in ("DIA", "TT", "CYC", "HOUSE"):
            plan = optimize_plan(PATTERNS[name], small_er)
            want = count_embeddings(
                small_er, build_plan(PATTERNS[name])
            ).embeddings
            assert count_embeddings(small_er, plan).embeddings == want

    def test_cost_estimate_positive(self, small_er):
        from repro.graph import graph_stats
        from repro.patterns import PATTERNS, build_plan
        from repro.patterns.optimizer import estimate_plan_cost

        est = estimate_plan_cost(
            build_plan(PATTERNS["4CF"]), graph_stats(small_er)
        )
        assert est.cost > 0
        assert est.expected_tasks >= small_er.num_vertices

    def test_deeper_pattern_costs_more(self, small_er):
        from repro.graph import graph_stats
        from repro.patterns import PATTERNS, build_plan
        from repro.patterns.optimizer import estimate_plan_cost

        stats = graph_stats(small_er)
        c3 = estimate_plan_cost(build_plan(PATTERNS["3CF"]), stats).cost
        c5 = estimate_plan_cost(build_plan(PATTERNS["5CF"]), stats).cost
        assert c5 > c3

    def test_oversized_pattern_rejected(self, small_er):
        from itertools import combinations

        from repro.errors import PlanError
        from repro.patterns import Pattern
        from repro.patterns.optimizer import optimize_plan

        big = Pattern("K9", 9, tuple(combinations(range(9), 2)))
        with pytest.raises(PlanError):
            optimize_plan(big, small_er)
