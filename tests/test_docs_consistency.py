"""Documentation consistency: the docs describe what actually exists."""

from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text()


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments():
    return (ROOT / "EXPERIMENTS.md").read_text()


class TestReadme:
    def test_install_and_quickstart_present(self, readme):
        assert "pip install -e ." in readme
        assert "XSetAccelerator" in readme

    def test_every_mentioned_example_exists(self, readme):
        for line in readme.splitlines():
            if "python examples/" in line:
                script = line.split("python ")[1].split()[0]
                assert (ROOT / script).exists(), script

    def test_every_subpackage_described(self, readme):
        for pkg in ("graph", "patterns", "setops", "siu", "sched",
                    "memory", "sim", "baselines", "hw", "core"):
            assert pkg in readme, pkg


class TestClusterDocs:
    @pytest.fixture(scope="class")
    def architecture(self):
        return (ROOT / "docs" / "ARCHITECTURE.md").read_text()

    def test_readme_has_cluster_quickstart(self, readme):
        assert "### Cluster" in readme
        assert "LocalCluster" in readme
        assert "python -m repro cluster" in readme
        assert "BENCH_cluster.json" in readme

    def test_architecture_has_cluster_section(self, architecture):
        assert "## Cluster" in architecture
        for phrase in ("halo", "exactly-once", "inproc", "tcp",
                       "python -m repro cluster"):
            assert phrase in architecture, phrase

    def test_documented_cluster_api_exists(self, readme):
        import repro

        for name in ("LocalCluster", "Coordinator", "ShardWorker",
                     "ClusterHealth"):
            assert hasattr(repro, name), name
        assert "LocalCluster" in readme

    def test_referenced_cluster_files_exist(self, readme, architecture):
        for rel in ("benchmarks/bench_cluster.py", "tests/test_cluster.py"):
            assert (ROOT / rel).exists(), rel
            assert rel in readme or rel in architecture, rel


class TestDesign:
    def test_substitution_table(self, design):
        for phrase in ("DRAMSys", "CACTI", "SNAP", "Chisel"):
            assert phrase in design, phrase

    def test_experiment_index_covers_all_tables_figures(self, design):
        for exp in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
                    "Fig 12", "Fig 13", "Fig 14", "Fig 15", "Fig 16",
                    "Fig 17", "Fig 18", "Fig 19"):
            assert exp in design, exp

    def test_referenced_bench_modules_exist(self, design):
        for line in design.splitlines():
            if "`benchmarks/bench_" in line:
                name = line.split("`benchmarks/")[1].split("`")[0]
                assert (ROOT / "benchmarks" / name).exists(), name


class TestExperiments:
    def test_every_evaluation_item_covered(self, experiments):
        for exp in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
                    "Figure 12", "Figure 13", "Figure 14", "Figure 15",
                    "Figure 16", "Figure 17", "Figure 18", "Figure 19"):
            assert exp in experiments, exp

    def test_paper_anchor_numbers_recorded(self, experiments):
        # headline paper numbers the reproduction compares against
        for anchor in ("6.4", "3.6", "2.9", "1.64", "1.9", "0.305",
                       "75.4", "1.30"):
            assert anchor in experiments, anchor


class TestExamplesDocstrings:
    def test_every_example_has_usage_docstring(self):
        import ast

        for path in sorted((ROOT / "examples").glob("*.py")):
            tree = ast.parse(path.read_text())
            doc = ast.get_docstring(tree)
            assert doc and "Usage" in doc, path.name


class TestBenchmarkCoverage:
    def test_one_bench_module_per_eval_item(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_table1_theory.py",
            "bench_table2_config.py",
            "bench_table3_datasets.py",
            "bench_table4_area.py",
            "bench_table5_simtime.py",
            "bench_fig12_software.py",
            "bench_fig13_accelerators.py",
            "bench_fig14_siu.py",
            "bench_fig15_area_power.py",
            "bench_fig16_ablation.py",
            "bench_fig17_scalability.py",
            "bench_fig18_cache.py",
            "bench_fig19_bitmap.py",
        ):
            assert required in benches, required


class TestReplicationDocs:
    @pytest.fixture(scope="class")
    def architecture(self):
        return (ROOT / "docs" / "ARCHITECTURE.md").read_text()

    def test_readme_section(self, readme):
        assert "### Replication & failover" in readme
        for phrase in (
            "replicas=2", "RetryPolicy", "HedgePolicy",
            "zero partial", "byte-identical", "served_by",
            "replica_failovers_total", "hedged_queries_total",
            "BENCH_failover.json",
            "python -m repro cluster --replicas 2",
        ):
            assert phrase in readme, phrase

    def test_architecture_section(self, architecture):
        assert "## Replication & failover" in architecture
        for phrase in (
            "ReplicaGroup", "RetryPolicy", "HedgePolicy",
            "HealthProber", "exactly-once",
            "FRAME_BODY_TIMEOUT", "comm.send",
            "repro_cluster_replica_state", "query_availability",
            "probe_failures", "dedupe_replies",
        ):
            assert phrase in architecture, phrase

    def test_documented_replication_api_exists(self):
        import repro

        for name in ("RetryPolicy", "HedgePolicy", "ReplicaState",
                     "HealthProber"):
            assert hasattr(repro, name), name

    def test_replicas_one_semantics_documented(self, readme, architecture):
        # the compat contract: replicas=1 is the pre-replication cluster
        assert "replicas=1" in readme
        assert "tests/test_cluster.py` passes unmodified" in architecture

    def test_cli_replicas_flag_matches_docs(self, readme):
        from repro.cli import build_parser

        parser = build_parser()
        sub = parser._subparsers._group_actions[0]
        assert "--replicas" in [
            opt
            for action in sub.choices["cluster"]._actions
            for opt in action.option_strings
        ]
        assert "--replicas" in readme

    def test_referenced_files_exist(self, readme, architecture):
        for rel in (
            "tests/test_replication.py",
            "tests/test_comm_hardening.py",
            "benchmarks/bench_failover.py",
        ):
            assert (ROOT / rel).exists(), rel
            assert rel in readme or rel in architecture, rel


class TestAdaptiveSchedulingDocs:
    @pytest.fixture(scope="class")
    def architecture(self):
        return (ROOT / "docs" / "ARCHITECTURE.md").read_text()

    def test_readme_section(self, readme):
        assert "### Adaptive scheduling & admission control" in readme
        for phrase in (
            'engine="auto"', "SchedulingConfig", "AdmissionPolicy",
            "AdmissionError", "shortest-predicted-job-first",
            "anti-starvation", "age_limit_seconds",
            'policy="fifo"', "repro_predictor_error_ratio",
            "BENCH_sched.json",
        ):
            assert phrase in readme, phrase

    def test_architecture_section(self, architecture):
        assert "## Adaptive scheduling & admission control" in architecture
        for phrase in (
            "CostPredictor", "profile", "throughput", "prior",
            "relabeling-invariant", "analytic_work",
            "predicted_backlog", "safety_factor",
            "min_deadline_seconds", "AdmissionError",
            "predicted_seconds", "repro_predictor_error_ratio",
        ):
            assert phrase in architecture, phrase

    def test_documented_adaptive_api_exists(self):
        import repro

        for name in ("SchedulingConfig", "AdmissionPolicy",
                     "CostPredictor", "CostEstimate"):
            assert hasattr(repro, name), name
        from repro.errors import AdmissionError  # noqa: F401

    def test_scheduling_defaults_match_docs(self, readme):
        # the README quotes the shipped defaults; keep them honest
        from repro.sched.adaptive import SchedulingConfig

        cfg = SchedulingConfig()
        assert cfg.policy == "cost"
        assert f"age_limit_seconds={cfg.age_limit_seconds}" in readme

    def test_cli_engine_auto_matches_docs(self, readme):
        from repro.cli import build_parser

        parser = build_parser()
        sub = parser._subparsers._group_actions[0]
        for cmd in ("count", "serve", "stats", "cluster"):
            engine_actions = [
                action for action in sub.choices[cmd]._actions
                if "--engine" in action.option_strings
            ]
            assert engine_actions and \
                "auto" in engine_actions[0].choices, cmd
        assert "--engine\n  auto" in readme or "--engine auto" in readme

    def test_referenced_files_exist(self, readme, architecture):
        for rel in (
            "benchmarks/bench_sched.py",
            "tests/test_adaptive_sched.py",
            "tests/test_predictor_features.py",
        ):
            assert (ROOT / rel).exists(), rel
            assert rel in readme or rel in architecture, rel


class TestClusterObservabilityDocs:
    @pytest.fixture(scope="class")
    def architecture(self):
        return (ROOT / "docs" / "ARCHITECTURE.md").read_text()

    def test_readme_section(self, readme):
        assert "### Observability across the cluster" in readme
        for phrase in (
            "TraceContext", "python -m repro top",
            "python -m repro flight --dump", 'shard="all"',
            "flight recorder", "SLO", "BENCH_obs.json",
        ):
            assert phrase in readme, phrase

    def test_architecture_section(self, architecture):
        assert "## Observability across the cluster" in architecture
        for phrase in (
            "TraceContext", "MetricsSnapshot", "burn rate",
            "FlightRecorder", "REPRO_FLIGHT_DIR", "re-anchor",
            "error budget",
        ):
            assert phrase in architecture, phrase

    def test_cli_surface_matches_docs(self, readme):
        from repro.cli import build_parser

        parser = build_parser()
        sub = parser._subparsers._group_actions[0]
        for name in ("top", "flight", "stats", "health"):
            assert name in sub.choices, name
            assert f"python -m repro {name}" in readme, name
        # the machine-readable flags exist on both surfaces
        for cmd in ("stats", "health"):
            assert "--json" in [
                opt
                for action in sub.choices[cmd]._actions
                for opt in action.option_strings
            ], cmd

    def test_documented_obs_api_exists(self):
        from repro import obs

        for name in (
            "TraceContext", "MetricsSnapshot", "FederatedMetrics",
            "SLO", "SLOTracker", "FlightRecorder", "collect_job_spans",
        ):
            assert hasattr(obs, name), name

    def test_referenced_files_exist(self, readme, architecture):
        for rel in (
            "benchmarks/bench_obs_overhead.py",
            "tests/test_obs_cluster.py",
        ):
            assert (ROOT / rel).exists(), rel
            assert rel in readme or rel in architecture, rel
