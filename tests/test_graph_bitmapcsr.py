"""Unit + property tests for the BitmapCSR hybrid set format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import bitmapcsr as bc
from repro.graph.bitmapcsr import BitmapSet

WIDTHS = [w for w in bc.VALID_WIDTHS if w > 0]

sorted_sets = st.lists(
    st.integers(min_value=0, max_value=500), max_size=60, unique=True
).map(lambda xs: np.asarray(sorted(xs), dtype=np.int64))


class TestEncodeDecode:
    @pytest.mark.parametrize("width", bc.VALID_WIDTHS)
    def test_roundtrip_example(self, width):
        v = np.array([0, 1, 3, 4, 5, 6, 7, 31, 32, 100])
        assert np.array_equal(bc.decode(bc.encode(v, width), width), v)

    def test_width_zero_is_identity(self):
        v = np.array([3, 9, 27])
        assert np.array_equal(bc.encode(v, 0), v)

    def test_empty(self):
        assert bc.encode(np.array([], dtype=np.int64), 8).size == 0
        assert bc.decode(np.array([], dtype=np.int64), 8).size == 0

    def test_invalid_width_rejected(self):
        with pytest.raises(GraphFormatError):
            bc.encode(np.array([1]), 3)

    def test_compression(self):
        # 8 consecutive vertices in one block -> one word at width 8
        v = np.arange(8)
        assert bc.encode(v, 8).size == 1
        assert bc.encode(v, 4).size == 2
        assert bc.encode(v, 1).size == 8

    def test_words_sorted_by_block(self):
        v = np.array([0, 5, 9, 17, 25, 33])
        for width in WIDTHS:
            words = bc.encode(v, width)
            keys = words >> width
            assert np.all(np.diff(keys) > 0)

    @given(v=sorted_sets, width=st.sampled_from(WIDTHS))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, v, width):
        assert np.array_equal(bc.decode(bc.encode(v, width), width), v)

    @given(v=sorted_sets, width=st.sampled_from(WIDTHS))
    @settings(max_examples=60, deadline=None)
    def test_encoded_length_matches(self, v, width):
        assert bc.encoded_length(v, width) == bc.encode(v, width).size


class TestSetOps:
    @given(a=sorted_sets, b=sorted_sets, width=st.sampled_from(WIDTHS))
    @settings(max_examples=60, deadline=None)
    def test_intersection_property(self, a, b, width):
        got = bc.decode(
            bc.intersect_words(bc.encode(a, width), bc.encode(b, width),
                               width),
            width,
        )
        assert np.array_equal(got, np.intersect1d(a, b))

    @given(a=sorted_sets, b=sorted_sets, width=st.sampled_from(WIDTHS))
    @settings(max_examples=60, deadline=None)
    def test_difference_property(self, a, b, width):
        got = bc.decode(
            bc.difference_words(bc.encode(a, width), bc.encode(b, width),
                                width),
            width,
        )
        assert np.array_equal(got, np.setdiff1d(a, b))

    @given(v=sorted_sets, width=st.sampled_from(WIDTHS))
    @settings(max_examples=40, deadline=None)
    def test_count_vertices(self, v, width):
        assert bc.count_vertices(bc.encode(v, width), width) == v.size

    def test_intersect_width0(self):
        a, b = np.array([1, 2, 3]), np.array([2, 3, 4])
        assert np.array_equal(bc.intersect_words(a, b, 0), [2, 3])

    def test_partial_block_overlap(self):
        # vertices share a block but not bits
        a = bc.encode(np.array([0, 1]), 8)
        b = bc.encode(np.array([2, 3]), 8)
        assert bc.intersect_words(a, b, 8).size == 0

    def test_difference_partial_block(self):
        a = bc.encode(np.array([0, 1, 2]), 8)
        b = bc.encode(np.array([1]), 8)
        got = bc.decode(bc.difference_words(a, b, 8), 8)
        assert got.tolist() == [0, 2]


class TestBitmapSet:
    def test_from_vertices(self):
        s = BitmapSet.from_vertices(np.array([0, 1, 9]), 8)
        assert s.num_vertices == 3
        assert s.num_words == 2

    def test_intersect_object(self):
        a = BitmapSet.from_vertices(np.array([0, 1, 9]), 8)
        b = BitmapSet.from_vertices(np.array([1, 9, 20]), 8)
        assert a.intersect(b).vertices().tolist() == [1, 9]

    def test_difference_object(self):
        a = BitmapSet.from_vertices(np.array([0, 1, 9]), 8)
        b = BitmapSet.from_vertices(np.array([1, 9, 20]), 8)
        assert a.difference(b).vertices().tolist() == [0]

    def test_width_mismatch_rejected(self):
        a = BitmapSet.from_vertices(np.array([0]), 8)
        b = BitmapSet.from_vertices(np.array([0]), 4)
        with pytest.raises(GraphFormatError):
            a.intersect(b)
