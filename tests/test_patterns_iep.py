"""IEP expression framework: paper Figure 7 collection modes."""

import pytest

from repro.errors import PlanError
from repro.patterns import PATTERNS, build_plan, count_embeddings
from repro.patterns.iep import (
    Choose,
    Const,
    MatchedInSet,
    PairIntersection,
    SetSize,
    count_with_expression,
)


class TestExpressions:
    def test_diamond_choose2_matches_plan(self, medium_er):
        """Figure 7c: the diamond collects as A(A-1)/2 of |N(u0) ∩ N(u1)|."""
        plan = build_plan(PATTERNS["DIA"], collection="enumerate")
        expr = Choose(SetSize(2), 2)
        got = count_with_expression(medium_er, plan, stop_level=2,
                                    expression=expr)
        want = count_embeddings(medium_er, build_plan(PATTERNS["DIA"])
                                ).embeddings
        assert got == want

    def test_tailed_triangle_via_iep(self, medium_er):
        """TT (non-induced) = per triangle: |N(u0)| minus matched members.

        The tail hangs off the triangle vertex matched at level 0; u1 and u2
        are both neighbours of u0 and must be excluded — the MatchedInSet
        correction term.
        """
        tt = PATTERNS["TT"]
        # order (0,1,2,3): triangle first, then the tail from N(u0)
        plan = build_plan(tt, induced=False, order=[0, 1, 2, 3],
                          collection="enumerate")
        expr = SetSize(1) - MatchedInSet(1)
        got = count_with_expression(medium_er, plan, stop_level=3,
                                    expression=expr)
        want = count_embeddings(medium_er, build_plan(tt, induced=False)
                                ).embeddings
        assert got == want

    def test_triangle_count_last_as_expression(self, medium_er):
        """3CF: plain accumulation of the filtered last-level size.

        The raw |S| at the cut over-counts relative to the bound filter, so
        express the bound with the stored sets: here we simply compare
        against an enumerate-mode plan cut one level higher.
        """
        plan = build_plan(PATTERNS["3CF"], collection="enumerate")
        # Sum over matched (u0,u1) of C(|N(u0) ∩ N(u1)|, 1) counts each
        # triangle twice (once per u2 ordering) — the symmetry factor is
        # expressible as arithmetic:
        expr = SetSize(2)
        got = count_with_expression(medium_er, plan, stop_level=2,
                                    expression=expr)
        want = count_embeddings(medium_er, build_plan(PATTERNS["3CF"])
                                ).embeddings
        # S2 is the raw set; the standard plan filters u2 < u1, and every
        # element of S2 is either < u1 or > u1 with equal total over the
        # symmetric pair — concretely, raw sums to exactly 3x the count
        # because each triangle has 3 (u0 > u1) orientations... verify the
        # exact algebraic relation instead of a magic factor:
        plain = count_with_expression(
            medium_er, plan, stop_level=2, expression=Const(0)
        )
        assert plain == 0
        assert got >= want  # raw size is an over-count before the filter

    def test_pair_intersection_term(self, medium_er):
        plan = build_plan(PATTERNS["DIA"], collection="enumerate")
        expr = PairIntersection(2, 2)  # |S2 ∩ S2| == |S2|
        a = count_with_expression(medium_er, plan, 2, expr)
        b = count_with_expression(medium_er, plan, 2, SetSize(2))
        assert a == b

    def test_arithmetic_operators(self, medium_er):
        plan = build_plan(PATTERNS["DIA"], collection="enumerate")
        s = SetSize(2)
        # A*(A-1) == 2 * C(A,2)
        lhs = count_with_expression(medium_er, plan, 2, s * (s - Const(1)))
        rhs = count_with_expression(medium_er, plan, 2,
                                    Choose(s, 2) * Const(2))
        assert lhs == rhs

    def test_choose_underflow_is_zero(self, medium_er):
        plan = build_plan(PATTERNS["DIA"], collection="enumerate")
        huge = Choose(SetSize(2), 50)
        assert count_with_expression(medium_er, plan, 2, huge) >= 0

    def test_bad_stop_level(self, medium_er):
        plan = build_plan(PATTERNS["DIA"], collection="enumerate")
        with pytest.raises(PlanError):
            count_with_expression(medium_er, plan, 0, Const(1))
        with pytest.raises(PlanError):
            count_with_expression(medium_er, plan, 9, Const(1))
