"""End-to-end architectural shape tests at small scale.

These assert — on graphs small enough for the unit-test budget — the same
qualitative findings the benchmark harness reproduces at larger scale.
"""

import pytest

from repro.core import XSetAccelerator, xset_default
from repro.graph import load_dataset, powerlaw_graph
from repro.patterns import PATTERNS, build_plan
from repro.sim import run_on_soc


@pytest.fixture(scope="module")
def dense_graph():
    return powerlaw_graph(
        600, avg_degree=16.0, max_degree=150, seed=21, name="dense",
        triangle_boost=0.4,
    ).relabeled_by_degree()


class TestSIUShapes:
    def test_order_aware_beats_merge_end_to_end_on_dense(self, dense_graph):
        """Long neighbour lists: N-per-cycle throughput must win."""
        plan = build_plan(PATTERNS["3CF"])
        oa = run_on_soc(dense_graph, plan, xset_default(
            num_pes=1, sius_per_pe=1, name="oa1"))
        mq = run_on_soc(dense_graph, plan, xset_default(
            num_pes=1, sius_per_pe=1, siu_kind="merge", segment_width=1,
            name="mq1"))
        assert oa.cycles < mq.cycles

    def test_order_aware_beats_sma_end_to_end(self, dense_graph):
        plan = build_plan(PATTERNS["3CF"])
        oa = run_on_soc(dense_graph, plan, xset_default(
            num_pes=1, sius_per_pe=1, name="oa1"))
        sma = run_on_soc(dense_graph, plan, xset_default(
            num_pes=1, sius_per_pe=1, siu_kind="sma", name="sma1"))
        assert oa.cycles <= sma.cycles

    def test_fewer_comparisons_than_sma(self, dense_graph):
        plan = build_plan(PATTERNS["3CF"])
        oa = run_on_soc(dense_graph, plan, xset_default(name="oa"))
        sma = run_on_soc(dense_graph, plan, xset_default(
            siu_kind="sma", name="sma"))
        assert oa.comparisons < sma.comparisons


class TestBitmapShapes:
    def test_bitmap_reduces_words(self, dense_graph):
        plan = build_plan(PATTERNS["3CF"])
        b8 = run_on_soc(dense_graph, plan, xset_default(name="b8"))
        b0 = run_on_soc(dense_graph, plan, xset_default(
            bitmap_width=0, name="b0"))
        assert b8.words_in < b0.words_in
        assert b8.embeddings == b0.embeddings

    def test_bitmap_not_slower(self, dense_graph):
        plan = build_plan(PATTERNS["3CF"])
        b8 = run_on_soc(dense_graph, plan, xset_default(name="b8"))
        b0 = run_on_soc(dense_graph, plan, xset_default(
            bitmap_width=0, name="b0"))
        assert b8.cycles <= b0.cycles * 1.05


class TestSchedulerShapes:
    def test_barrier_free_highest_utilization(self, skewed_graph):
        plan = build_plan(PATTERNS["4CF"])
        utils = {}
        for sched in ("barrier-free", "dfs"):
            cfg = xset_default(scheduler=sched, name=sched)
            utils[sched] = run_on_soc(skewed_graph, plan, cfg
                                      ).siu_utilization
        assert utils["barrier-free"] > utils["dfs"]

    def test_task_set_capacity_respected(self, skewed_graph):
        cfg = xset_default(num_task_sets=8, name="cap8")
        report = run_on_soc(skewed_graph, build_plan(PATTERNS["4CF"]), cfg)
        assert report.peak_active_task_sets <= 8

    def test_tiny_capacity_still_correct(self, skewed_graph):
        plan = build_plan(PATTERNS["4CF"])
        tiny = run_on_soc(skewed_graph, plan, xset_default(
            num_task_sets=1, task_set_width=1, name="tiny"))
        full = run_on_soc(skewed_graph, plan, xset_default())
        assert tiny.embeddings == full.embeddings
        assert tiny.cycles >= full.cycles


class TestMemoryShapes:
    # cache sizes are scaled with the stand-in graphs: a 0.25-scale WV has a
    # ~200 KB working set, so 64 KB is the pressured point and 1 MB is ample
    def test_bigger_shared_cache_not_slower_under_pressure(self):
        g = load_dataset("WV", scale=0.25)
        plan = build_plan(PATTERNS["3CF"])
        small = run_on_soc(g, plan, xset_default(shared_mb=1 / 16,
                                                 name="s64k"))
        big = run_on_soc(g, plan, xset_default(shared_mb=1.0, name="s1m"))
        assert big.cycles <= small.cycles * 1.02

    def test_dram_traffic_drops_with_shared_cache(self):
        g = load_dataset("WV", scale=0.25)
        plan = build_plan(PATTERNS["3CF"])
        small = run_on_soc(g, plan, xset_default(shared_mb=1 / 16,
                                                 name="s64k"))
        big = run_on_soc(g, plan, xset_default(shared_mb=1.0, name="s1m"))
        assert big.dram_bytes < small.dram_bytes


class TestMultiPattern:
    def test_3mf_transformation_identity(self, medium_er):
        """#wedges(non-induced) == #induced wedges + 3 * #triangles."""
        accel = XSetAccelerator()
        tri = accel.count(medium_er, PATTERNS["3CF"]).embeddings
        wedge_ind = accel.count(
            medium_er, PATTERNS["WEDGE"], induced=True
        ).embeddings
        wedge_non = accel.count(
            medium_er, PATTERNS["WEDGE"], induced=False
        ).embeddings
        assert wedge_non == wedge_ind + 3 * tri
