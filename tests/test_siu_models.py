"""SIU cost models: cross-validation against the exact pipelines + Table 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.setops import MergeQueuePipeline, OrderAwarePipeline, SystolicMergeArray
from repro.siu import (
    MergeQueueSIU,
    OrderAwareSIU,
    SystolicSIU,
    block_keys,
    make_siu,
    merge_boundaries,
)

sorted_sets = st.lists(
    st.integers(min_value=0, max_value=300), max_size=80, unique=True
).map(lambda xs: np.asarray(sorted(xs), dtype=np.int64))


class TestBlockKeys:
    def test_width_zero_identity(self):
        v = np.array([3, 7, 9])
        assert np.array_equal(block_keys(v, 0), v)

    def test_width_eight(self):
        v = np.array([0, 1, 7, 8, 17])
        assert block_keys(v, 8).tolist() == [0, 1, 2]

    def test_empty(self):
        assert block_keys(np.array([], dtype=np.int64), 8).size == 0


class TestMergeBoundaries:
    def test_full_overlap(self):
        a = np.array([1, 2, 3])
        i, j, m = merge_boundaries(a, a)
        assert (i, j, m) == (3, 3, 3)

    def test_disjoint_ranges(self):
        a = np.array([1, 2, 3])
        b = np.array([10, 11])
        i, j, m = merge_boundaries(a, b)
        assert (i, j, m) == (3, 0, 0)

    def test_empty(self):
        assert merge_boundaries(np.array([]), np.array([1])) == (0, 0, 0)


class TestAgainstExactPipelines:
    """The analytic cost models must match the element-level models."""

    @given(a=sorted_sets, b=sorted_sets)
    @settings(max_examples=60, deadline=None)
    def test_order_aware_issue_cycles_exact(self, a, b):
        for n in (4, 8):
            model = OrderAwareSIU(segment_width=n)
            exact = OrderAwarePipeline(segment_width=n)
            for op, exop in (("set_int", "intersect"),
                             ("set_diff", "difference")):
                cost = model.op_cost(a, b, op)
                trace = exact.run(a, b, exop)
                assert cost.issue_cycles == trace.issue_cycles
                assert cost.pipeline_depth == trace.pipeline_depth

    @given(a=sorted_sets, b=sorted_sets)
    @settings(max_examples=60, deadline=None)
    def test_merge_queue_issue_cycles_exact(self, a, b):
        model = MergeQueueSIU()
        exact = MergeQueuePipeline()
        for op, exop in (("set_int", "intersect"), ("set_diff", "difference")):
            cost = model.op_cost(a, b, op)
            trace = exact.run(a, b, exop)
            assert cost.issue_cycles == trace.issue_cycles, (
                op, a.tolist(), b.tolist()
            )

    @given(a=sorted_sets, b=sorted_sets)
    @settings(max_examples=60, deadline=None)
    def test_systolic_issue_cycles_exact(self, a, b):
        """SMA analytic segment-entry count equals the replay model."""
        for n in (4, 8):
            model = SystolicSIU(segment_width=n)
            exact = SystolicMergeArray(segment_width=n)
            for op, exop in (("set_int", "intersect"),
                             ("set_diff", "difference")):
                cost = model.op_cost(a, b, op)
                trace = exact.run(a, b, exop)
                assert cost.issue_cycles == trace.issue_cycles, (
                    op, n, a.tolist(), b.tolist()
                )


class TestTableOneInvariants:
    def test_throughputs(self):
        assert MergeQueueSIU().throughput == 1
        assert OrderAwareSIU(8).throughput == 8
        assert SystolicSIU(8).throughput == 8

    def test_comparator_complexity_classes(self):
        """O(1) vs O(N log N) vs O(N^2): check growth ratios."""
        for n in (4, 8, 16, 32):
            oa = OrderAwareSIU(n).comparator_count
            sma = SystolicSIU(n).comparator_count
            assert sma == n * n
            assert oa <= 2 * n * (1 + np.log2(n))
            assert oa < sma or n <= 2

    def test_latency_classes(self):
        import math

        for n in (4, 8, 16, 32):
            assert OrderAwareSIU(n).pipeline_depth == 2 + 2 * math.log2(n)
            assert SystolicSIU(n).pipeline_depth == 2 * n
        assert MergeQueueSIU().pipeline_depth == 2

    def test_comparisons_counted(self):
        a = np.arange(0, 64, 2)
        b = np.arange(1, 65, 2)
        oa = OrderAwareSIU(8).op_cost(a, b, "set_int")
        sma = SystolicSIU(8).op_cost(a, b, "set_int")
        mq = MergeQueueSIU().op_cost(a, b, "set_int")
        # SMA performs redundant all-to-all comparisons
        assert sma.comparisons > oa.comparisons > mq.comparisons


class TestFactory:
    def test_make_all_kinds(self):
        assert make_siu("order-aware", 8).name == "order-aware"
        assert make_siu("merge").name == "merge"
        assert make_siu("sma", 4).name == "sma"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_siu("quantum")

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigError):
            OrderAwareSIU(segment_width=6)
        with pytest.raises(ConfigError):
            SystolicSIU(segment_width=3)

    def test_bad_op_rejected(self):
        with pytest.raises(ConfigError):
            OrderAwareSIU(8).op_cost(np.array([1]), np.array([1]), "union")

    def test_describe(self):
        text = OrderAwareSIU(8, bitmap_width=8).describe()
        assert "order-aware" in text
        assert "N=8" in text
