"""Comm-layer hardening: corrupt frames, stalled bodies, reopen/revive.

Satellite of the replication PR: a hostile or corrupt byte stream must
produce *typed* :class:`~repro.errors.CommError` failures — never a
wedged reader — because failover can only route around failures it can
see.  Covers both directions (server reading a bad client, client
reading a bad server) plus the listener ``reopen`` / worker ``revive``
recovery path the prober relies on.
"""

import socket
import struct
import threading
import time

import pytest

from repro.cluster import ShardWorker, get_transport
from repro.cluster.comm import tcp as tcp_mod
from repro.cluster.comm.base import FRAME_HEADER, decode_body, encode_frame
from repro.core.config import xset_default
from repro.errors import (
    ClusterError,
    CommClosedError,
    CommError,
    CommTimeoutError,
)


def _tcp_port(address: str) -> tuple[str, int]:
    host, _, port = address[len("tcp://"):].rpartition(":")
    return host, int(port)


def _echo_listener(transport):
    return transport.listen(lambda p: {"echo": p}, name="hardening")


class TestDecodeBody:
    def test_garbage_raises_typed(self):
        with pytest.raises(CommError, match="corrupt stream"):
            decode_body(b"\x93not pickle at all")

    def test_truncated_pickle_raises_typed(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(CommError):
            decode_body(frame[8:-3])  # body cut short

    def test_roundtrip_still_fine(self):
        frame = encode_frame([1, "two"])
        assert decode_body(frame[8:]) == [1, "two"]


class TestServerSideHardening:
    """A misbehaving client must not wedge the listener."""

    def test_oversized_length_prefix_drops_connection(self):
        transport = get_transport("tcp")
        listener = _echo_listener(transport)
        try:
            host, port = _tcp_port(listener.address)
            with socket.create_connection((host, port), timeout=5) as raw:
                raw.sendall(struct.pack(">Q", 1 << 40) + b"junk")
                raw.settimeout(5)
                assert raw.recv(1024) == b""  # server hung up, typed
            # the listener still serves well-behaved peers
            conn = transport.connect(listener.address)
            assert conn.request("ok", timeout=10) == {"echo": "ok"}
            conn.close()
        finally:
            listener.close()

    def test_undecodable_body_drops_connection(self):
        transport = get_transport("tcp")
        listener = _echo_listener(transport)
        try:
            host, port = _tcp_port(listener.address)
            body = b"\xffgarbage-not-pickle\xff"
            with socket.create_connection((host, port), timeout=5) as raw:
                raw.sendall(FRAME_HEADER.pack(len(body)) + body)
                raw.settimeout(5)
                assert raw.recv(1024) == b""
            conn = transport.connect(listener.address)
            assert conn.request(1, timeout=10) == {"echo": 1}
            conn.close()
        finally:
            listener.close()

    def test_stalled_body_times_out(self, monkeypatch):
        """A peer that sends a length prefix then stalls is dropped
        after FRAME_BODY_TIMEOUT — not waited on forever."""
        monkeypatch.setattr(tcp_mod, "FRAME_BODY_TIMEOUT", 0.2)
        transport = get_transport("tcp")
        listener = _echo_listener(transport)
        try:
            host, port = _tcp_port(listener.address)
            with socket.create_connection((host, port), timeout=5) as raw:
                raw.sendall(FRAME_HEADER.pack(64) + b"only ten b")
                raw.settimeout(5)
                started = time.monotonic()
                assert raw.recv(1024) == b""
                assert time.monotonic() - started < 4.0
            conn = transport.connect(listener.address)
            assert conn.request("x", timeout=10) == {"echo": "x"}
            conn.close()
        finally:
            listener.close()

    def test_idle_connection_is_not_dropped(self, monkeypatch):
        """The body timeout must not apply between frames: an idle but
        healthy connection stays usable past FRAME_BODY_TIMEOUT."""
        monkeypatch.setattr(tcp_mod, "FRAME_BODY_TIMEOUT", 0.2)
        transport = get_transport("tcp")
        listener = _echo_listener(transport)
        try:
            conn = transport.connect(listener.address)
            assert conn.request(1, timeout=10) == {"echo": 1}
            time.sleep(0.5)  # idle well past the body timeout
            assert conn.request(2, timeout=10) == {"echo": 2}
            conn.close()
        finally:
            listener.close()


class TestClientSideHardening:
    """A misbehaving server must fail the client with typed errors."""

    def _raw_server(self, behaviour):
        """A one-connection raw TCP server running ``behaviour(conn)``."""
        srv = socket.create_server(("127.0.0.1", 0))
        srv.settimeout(10)
        port = srv.getsockname()[1]

        def _serve():
            conn, _ = srv.accept()
            with conn:
                behaviour(conn)
            srv.close()

        thread = threading.Thread(target=_serve, daemon=True)
        thread.start()
        return f"tcp://127.0.0.1:{port}", thread

    def test_corrupt_reply_raises_typed_and_poisons(self):
        def behaviour(conn):
            conn.recv(65536)  # swallow the request
            body = b"\x00certainly not a pickle"
            conn.sendall(FRAME_HEADER.pack(len(body)) + body)
            time.sleep(0.2)

        address, thread = self._raw_server(behaviour)
        transport = get_transport("tcp")
        client = transport.connect(address)
        with pytest.raises(CommError):
            client.request({"op": "ping"}, timeout=10)
        # the stream is poisoned: the connection refuses further use
        with pytest.raises(CommClosedError):
            client.request({"op": "ping"}, timeout=10)
        thread.join(timeout=5)

    def test_stalled_reply_times_out_typed(self, monkeypatch):
        monkeypatch.setattr(tcp_mod, "FRAME_BODY_TIMEOUT", 0.2)

        def behaviour(conn):
            conn.recv(65536)
            conn.sendall(FRAME_HEADER.pack(50))  # prefix, then silence
            time.sleep(1.0)

        address, thread = self._raw_server(behaviour)
        transport = get_transport("tcp")
        client = transport.connect(address)
        started = time.monotonic()
        with pytest.raises(CommTimeoutError):
            client.request({"op": "ping"}, timeout=10)
        assert time.monotonic() - started < 5.0
        with pytest.raises(CommClosedError):
            client.request({"op": "ping"}, timeout=10)
        thread.join(timeout=5)


class TestReopenAndRevive:
    @pytest.mark.parametrize("name", ["inproc", "tcp"])
    def test_listener_reopen_serves_again(self, name):
        transport = get_transport(name)
        listener = transport.listen(lambda p: {"echo": p})
        address = listener.address
        listener.close()
        with pytest.raises(CommError):
            conn = transport.connect(address)
            conn.request("x", timeout=5)
        listener.reopen()
        try:
            conn = transport.connect(address)
            assert conn.request("y", timeout=10) == {"echo": "y"}
            conn.close()
        finally:
            listener.close()

    @pytest.mark.parametrize("name", ["inproc", "tcp"])
    def test_worker_revive_answers_pings_again(self, name):
        transport = get_transport(name)
        worker = ShardWorker(
            "w0", transport, xset_default(engine="batched")
        )
        try:
            conn = transport.connect(worker.address)
            assert conn.request({"op": "ping"}, timeout=10) == "pong"
            worker.kill()
            assert worker.killed
            with pytest.raises(CommError):
                fresh = transport.connect(worker.address)
                fresh.request({"op": "ping"}, timeout=5)
            worker.revive()
            assert not worker.killed
            conn2 = transport.connect(worker.address)
            assert conn2.request({"op": "ping"}, timeout=10) == "pong"
            conn2.close()
        finally:
            worker.force_close()

    def test_closed_worker_cannot_revive(self):
        transport = get_transport("inproc")
        worker = ShardWorker(
            "w1", transport, xset_default(engine="batched")
        )
        worker.close()
        with pytest.raises(ClusterError, match="shut down"):
            worker.revive()
