"""Memory subsystem tests: caches, DRAM, CACTI-lite, hierarchy streams."""

import pytest

from repro.errors import ConfigError, MemoryModelError
from repro.memory import (
    WORDS_PER_LINE,
    CacheConfig,
    CacheModel,
    DRAMConfig,
    DRAMModel,
    MemoryConfig,
    MemoryHierarchy,
    estimate_sram,
)


def small_cache(ways=2, lines=8, banks=2):
    return CacheModel(
        CacheConfig(
            size_bytes=lines * 64, ways=ways, banks=banks, hit_latency=2,
            name="t",
        )
    )


class TestCacheLRU:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.access_line(5)
        assert c.access_line(5)

    def test_lru_eviction_order(self):
        c = small_cache(ways=2, lines=8)  # 4 sets, 2 ways
        # lines 0, 4, 8 map to set 0 (4 sets)
        c.access_line(0)
        c.access_line(4)
        c.access_line(0)      # 0 becomes MRU
        c.access_line(8)      # evicts 4 (the LRU), not 0
        assert c.contains(0)
        assert not c.contains(4)
        assert c.contains(8)

    def test_sets_are_independent(self):
        c = small_cache(ways=2, lines=8)
        c.access_line(0)
        c.access_line(1)  # different set
        assert c.contains(0) and c.contains(1)

    def test_stats(self):
        c = small_cache()
        c.access_line(1)
        c.access_line(1)
        c.access_line(2)
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(1 / 3)

    def test_no_allocate_probe(self):
        c = small_cache()
        assert not c.access_line(3, allocate=False)
        assert not c.contains(3)

    def test_reset(self):
        c = small_cache()
        c.access_line(1)
        c.reset()
        assert c.occupancy == 0
        assert c.stats.accesses == 0

    def test_occupancy_bounded(self):
        c = small_cache(ways=2, lines=8)
        for line in range(100):
            c.access_line(line)
        assert c.occupancy <= 8

    def test_bank_throughput(self):
        c = small_cache(banks=4, lines=16, ways=2)
        assert c.stream_bank_cycles(8) == 2
        assert c.stream_bank_cycles(1) == 1

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0, ways=2, banks=2, hit_latency=1
                        ).validate()
        with pytest.raises(ConfigError):
            # 3 sets: not a power of two
            CacheConfig(size_bytes=6 * 64, ways=2, banks=1, hit_latency=1
                        ).validate()


class TestDRAM:
    def test_row_hit_cheaper_than_miss(self):
        d = DRAMModel(DRAMConfig())
        t1 = d.request_line(0.0, 0)       # row miss
        t2 = d.request_line(t1, 1 * 4)    # same channel? line 4 -> channel 0
        assert d.stats.row_misses >= 1
        # second access to the same row is a hit and faster
        assert (t2 - t1) < t1

    def test_channel_interleave(self):
        d = DRAMModel(DRAMConfig(channels=4))
        assert d.channel_of(0) == 0
        assert d.channel_of(1) == 1
        assert d.channel_of(5) == 1

    def test_queueing_under_contention(self):
        d = DRAMModel(DRAMConfig(channels=1))
        for _ in range(50):
            d.request_line(0.0, 0)
        assert d.stats.queue_cycles > 0

    def test_bandwidth_accounting(self):
        d = DRAMModel()
        d.request_line(0.0, 0)
        assert d.stats.bytes_transferred == 64
        assert d.achieved_bandwidth_gbps(64.0) == pytest.approx(1.0)

    def test_peak_bandwidth_matches_table2(self):
        assert DRAMConfig().peak_bandwidth_gbps == pytest.approx(76.8)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            DRAMConfig(channels=0).validate()

    def test_reset(self):
        d = DRAMModel()
        d.request_line(0.0, 0)
        d.reset()
        assert d.stats.requests == 0


class TestCactiLite:
    def test_anchor_point(self):
        est = estimate_sram(32 * 1024)
        assert est.area_mm2 == pytest.approx(0.174, rel=0.01)

    def test_area_grows_sublinearly(self):
        small = estimate_sram(32 * 1024).area_mm2
        big = estimate_sram(64 * 1024).area_mm2
        assert small < big < 2 * small

    def test_latency_grows_with_capacity(self):
        assert (
            estimate_sram(4 * 1024 * 1024, banks=8).access_latency_cycles
            > estimate_sram(32 * 1024, banks=4).access_latency_cycles
        )

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            estimate_sram(0)


class TestHierarchy:
    def test_cold_stream_misses_then_warms(self):
        h = MemoryHierarchy(MemoryConfig(num_pes=2))
        cold = h.stream_read(0.0, 0, 0x1000_0000, 32)
        warm = h.stream_read(100.0, 0, 0x1000_0000, 32)
        assert cold.shared_misses > 0
        assert warm.private_misses == 0
        assert warm.total_cycles < cold.total_cycles

    def test_lines_computed(self):
        h = MemoryHierarchy(MemoryConfig(num_pes=1))
        r = h.stream_read(0.0, 0, 0, WORDS_PER_LINE * 3)
        assert r.lines == 3

    def test_empty_stream(self):
        h = MemoryHierarchy(MemoryConfig(num_pes=1))
        r = h.stream_read(0.0, 0, 0, 0)
        assert r.total_cycles == 0

    def test_other_pe_hits_shared(self):
        h = MemoryHierarchy(MemoryConfig(num_pes=2))
        h.stream_read(0.0, 0, 0x1000_0000, 16)
        r = h.stream_read(50.0, 1, 0x1000_0000, 16)
        assert r.shared_misses == 0
        assert r.private_misses > 0

    def test_scratch_allocation_disjoint(self):
        h = MemoryHierarchy(MemoryConfig(num_pes=2))
        a = h.allocate_scratch(0, 10)
        b = h.allocate_scratch(0, 10)
        c = h.allocate_scratch(1, 10)
        assert a + 10 <= b
        assert abs(c - a) >= 0x0400_0000  # separate PE regions

    def test_scratch_bad_pe(self):
        h = MemoryHierarchy(MemoryConfig(num_pes=1))
        with pytest.raises(MemoryModelError):
            h.allocate_scratch(3, 4)

    def test_write_allocates_private(self):
        h = MemoryHierarchy(MemoryConfig(num_pes=1))
        addr = h.allocate_scratch(0, 32)
        h.stream_write(0.0, 0, addr, 32)
        r = h.stream_read(10.0, 0, addr, 32)
        assert r.private_misses == 0

    def test_reset(self):
        h = MemoryHierarchy(MemoryConfig(num_pes=1))
        h.stream_read(0.0, 0, 0, 64)
        h.reset()
        assert h.shared.stats.accesses == 0
        assert h.dram.stats.requests == 0
