"""Host/hardware work splitting for over-deep patterns (paper §4.2)."""

import pytest

from repro.core import xset_default
from repro.graph import erdos_renyi
from repro.patterns import PATTERNS, Pattern, build_plan, count_embeddings
from repro.sim import run_on_soc


@pytest.fixture(scope="module")
def dense40():
    return erdos_renyi(40, 10.0, seed=21, name="dense40")


class TestDepthSplit:
    @pytest.mark.parametrize("max_hw", [1, 2, 3])
    def test_any_split_point_is_exact(self, max_hw, dense40):
        plan = build_plan(PATTERNS["5CF"])
        want = count_embeddings(dense40, plan).embeddings
        cfg = xset_default(max_hw_levels=max_hw, name=f"hw{max_hw}")
        assert run_on_soc(dense40, plan, cfg).embeddings == want

    def test_host_cycles_grow_as_hw_shrinks(self, dense40):
        plan = build_plan(PATTERNS["5CF"])
        shallow = run_on_soc(
            dense40, plan, xset_default(max_hw_levels=2, name="hw2")
        )
        deep = run_on_soc(
            dense40, plan, xset_default(max_hw_levels=8, name="hw8")
        )
        assert shallow.host_cycles > deep.host_cycles
        assert shallow.tasks < deep.tasks  # prefix executed on the host

    def test_six_clique_beyond_default(self, dense40):
        """A 6-vertex pattern still counts exactly through the whole stack."""
        from repro.patterns import count_unique_embeddings

        k6 = Pattern.clique(6)
        plan = build_plan(k6)
        want = count_unique_embeddings(dense40, k6)
        got = run_on_soc(
            dense40, plan, xset_default(max_hw_levels=3, name="hw3")
        )
        assert got.embeddings == want

    def test_induced_pattern_split(self, dense40):
        plan = build_plan(PATTERNS["CYC"])  # induced, uses set_diff
        want = count_embeddings(dense40, plan).embeddings
        cfg = xset_default(max_hw_levels=1, name="hw1")
        assert run_on_soc(dense40, plan, cfg).embeddings == want
