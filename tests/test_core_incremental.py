"""Incremental dynamic-graph counting vs from-scratch recounts."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalGPM, pattern_diameter
from repro.errors import GraphFormatError
from repro.graph import CSRGraph, erdos_renyi
from repro.patterns import PATTERNS, build_plan, count_embeddings


class TestPatternDiameter:
    @pytest.mark.parametrize(
        "name,diameter",
        [("3CF", 1), ("4CF", 1), ("DIA", 2), ("CYC", 2), ("TT", 2),
         ("P3", 3)],
    )
    def test_known_diameters(self, name, diameter):
        assert pattern_diameter(PATTERNS[name]) == diameter


def _recount(inc: IncrementalGPM) -> int:
    return count_embeddings(inc.snapshot(), inc.plan).embeddings


class TestIncremental:
    @pytest.mark.parametrize("pattern", ["3CF", "DIA", "CYC"])
    def test_random_update_stream(self, pattern):
        rng = np.random.default_rng(3)
        g = erdos_renyi(40, 6.0, seed=8)
        inc = IncrementalGPM(g, PATTERNS[pattern])
        assert inc.count == _recount(inc)
        for _ in range(25):
            u, v = rng.integers(0, 40, 2)
            if u == v:
                continue
            if inc.has_edge(int(u), int(v)):
                inc.remove_edge(int(u), int(v))
            else:
                inc.insert_edge(int(u), int(v))
            assert inc.count == _recount(inc)

    def test_insert_then_remove_is_identity(self):
        g = erdos_renyi(30, 5.0, seed=2)
        inc = IncrementalGPM(g, PATTERNS["3CF"])
        base = inc.count
        d1 = inc.insert_edge(0, 1) if not inc.has_edge(0, 1) else 0
        d2 = inc.remove_edge(0, 1)
        assert d1 + d2 == 0 or inc.count == base

    def test_duplicate_insert_is_noop(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        inc = IncrementalGPM(g, PATTERNS["3CF"])
        assert inc.insert_edge(0, 1) == 0
        assert inc.updates_applied == 0

    def test_missing_remove_is_noop(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        inc = IncrementalGPM(g, PATTERNS["3CF"])
        assert inc.remove_edge(1, 2) == 0

    def test_triangle_closure_delta(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        inc = IncrementalGPM(g, PATTERNS["3CF"])
        assert inc.count == 0
        assert inc.insert_edge(0, 2) == 1
        assert inc.count == 1
        assert inc.remove_edge(0, 1) == -1
        assert inc.count == 0

    def test_self_loop_rejected(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        inc = IncrementalGPM(g, PATTERNS["3CF"])
        with pytest.raises(GraphFormatError):
            inc.insert_edge(1, 1)

    def test_out_of_range_rejected(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        inc = IncrementalGPM(g, PATTERNS["3CF"])
        with pytest.raises(GraphFormatError):
            inc.insert_edge(0, 7)

    def test_induced_pattern_can_lose_embeddings_on_insert(self):
        # path 0-1-2 is an induced wedge; closing it destroys the wedge
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        inc = IncrementalGPM(g, PATTERNS["WEDGE"], induced=True)
        assert inc.count == 1
        delta = inc.insert_edge(0, 2)
        assert delta == -1
        assert inc.count == 0
