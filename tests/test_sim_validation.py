"""Fast-vs-exact simulator cross-validation (paper §7.1.1 methodology)."""

import pytest

from repro.core import xset_default
from repro.graph import erdos_renyi
from repro.patterns import PATTERNS, build_plan
from repro.sim.validation import ExactTaskExecutor, cross_validate


def _config(kind: str):
    return xset_default(
        siu_kind=kind,
        segment_width=8 if kind != "merge" else 1,
        bitmap_width=8 if kind != "merge" else 0,
        name=f"cv-{kind}",
    )


@pytest.mark.parametrize("kind", ["order-aware", "sma", "merge"])
@pytest.mark.parametrize("pattern", ["3CF", "CYC"])
def test_analytic_matches_exact_pipelines(kind, pattern):
    """Total analytic issue cycles equal the element-level replay's."""
    g = erdos_renyi(40, 6.0, seed=7)
    cv = cross_validate(g, build_plan(PATTERNS[pattern]), _config(kind))
    assert cv.embeddings_match
    assert cv.relative_issue_error == pytest.approx(0.0, abs=1e-9)


def test_exact_executor_is_a_drop_in(medium_er):
    """The exact executor plugs into the simulator and changes no counts."""
    from repro.memory import MemoryHierarchy
    from repro.patterns import count_embeddings
    from repro.sim import AcceleratorSim
    from repro.siu import make_siu

    cfg = _config("order-aware")
    plan = build_plan(PATTERNS["3CF"])
    sim = AcceleratorSim(medium_er, plan, cfg)
    sim.executor = ExactTaskExecutor(
        medium_er, plan, make_siu("order-aware", 8, 8),
        MemoryHierarchy(cfg.memory_config()), cfg,
    )
    report = sim.run()
    assert report.embeddings == count_embeddings(medium_er, plan).embeddings
    assert sim.executor.exact_issue_cycles > 0


def test_plain_csr_also_exact():
    g = erdos_renyi(30, 6.0, seed=9)
    cfg = xset_default(bitmap_width=0, name="cv-b0")
    cv = cross_validate(g, build_plan(PATTERNS["3CF"]), cfg)
    assert cv.relative_issue_error == pytest.approx(0.0, abs=1e-9)
