"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    barabasi_albert,
    configuration_model,
    erdos_renyi,
    powerlaw_degree_sequence,
    powerlaw_graph,
)
from repro.graph.stats import degree_skewness


class TestErdosRenyi:
    def test_size_and_density(self):
        g = erdos_renyi(500, 8.0, seed=1)
        assert g.num_vertices == 500
        # expected m = n*avg/2 = 2000; allow slack for dedup losses
        assert 1500 <= g.num_edges <= 2100

    def test_deterministic(self):
        a = erdos_renyi(100, 5.0, seed=9)
        b = erdos_renyi(100, 5.0, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_different_seeds_differ(self):
        a = erdos_renyi(100, 5.0, seed=1)
        b = erdos_renyi(100, 5.0, seed=2)
        assert not np.array_equal(a.indices, b.indices)

    def test_tiny(self):
        g = erdos_renyi(1, 0.0, seed=0)
        assert g.num_edges == 0


class TestBarabasiAlbert:
    def test_basic(self):
        g = barabasi_albert(200, 3, seed=4)
        assert g.num_vertices == 200
        assert g.num_edges <= 3 * 200

    def test_hub_emerges(self):
        g = barabasi_albert(500, 2, seed=4)
        assert g.degrees.max() > 5 * g.degrees.mean()

    def test_rejects_small_n(self):
        with pytest.raises(GraphFormatError):
            barabasi_albert(2, 3)


class TestPowerlawSequence:
    def test_mean_close_to_target(self):
        deg = powerlaw_degree_sequence(5000, 8.0, 500, seed=2)
        assert abs(deg.mean() - 8.0) / 8.0 < 0.25

    def test_max_degree_pinned(self):
        deg = powerlaw_degree_sequence(1000, 5.0, 321, seed=2)
        assert deg.max() == 321

    def test_even_sum(self):
        for seed in range(5):
            deg = powerlaw_degree_sequence(777, 4.0, 50, seed=seed)
            assert deg.sum() % 2 == 0

    def test_invalid_args(self):
        with pytest.raises(GraphFormatError):
            powerlaw_degree_sequence(10, 0.5, 5)
        with pytest.raises(GraphFormatError):
            powerlaw_degree_sequence(10, 10.0, 5)


class TestConfigurationModel:
    def test_respects_degrees_approximately(self):
        deg = np.array([3, 3, 2, 2, 2] * 20)
        g = configuration_model(deg, seed=1)
        assert g.num_vertices == 100
        # simple-graph cleanup drops a few edges only
        assert g.num_edges >= int(deg.sum() / 2 * 0.85)

    def test_odd_sum_rejected(self):
        with pytest.raises(GraphFormatError):
            configuration_model(np.array([1, 1, 1]))


class TestPowerlawGraph:
    def test_skew_positive(self):
        g = powerlaw_graph(2000, 6.0, 300, seed=3)
        assert degree_skewness(g.degrees) > 1.0

    def test_triangle_boost_adds_closure(self):
        base = powerlaw_graph(800, 8.0, 100, seed=6, triangle_boost=0.0)
        boosted = powerlaw_graph(800, 8.0, 100, seed=6, triangle_boost=0.5)

        def triangles(g):
            from repro.patterns import PATTERNS, build_plan, count_embeddings

            return count_embeddings(g, build_plan(PATTERNS["3CF"])).embeddings

        assert triangles(boosted) > triangles(base)

    def test_deterministic(self):
        a = powerlaw_graph(300, 5.0, 60, seed=8, triangle_boost=0.2)
        b = powerlaw_graph(300, 5.0, 60, seed=8, triangle_boost=0.2)
        assert np.array_equal(a.indices, b.indices)
