"""Property tests for the cost model's feature extraction.

The contract the predictor relies on (see
:mod:`repro.sched.adaptive.features`): feature extraction is a pure
function of ``(graph fingerprint, canonical pattern key)`` — it is
deterministic across calls, and invariant under pattern vertex
relabeling, because two isomorphic submissions must train and hit the
same model entry even though the matching-order heuristic may compile
them to superficially different plans.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi
from repro.patterns.pattern import PATTERNS
from repro.sched.adaptive import analytic_work, plan_features, query_features
from repro.service import pattern_cache_key

GRAPH = erdos_renyi(50, 6.0, seed=9, name="prop-features-er50")
FINGERPRINT = "prop-features-fp"

_pattern_names = st.sampled_from(sorted(PATTERNS))


@st.composite
def pattern_and_permutation(draw):
    pattern = PATTERNS[draw(_pattern_names)]
    perm = draw(st.permutations(range(pattern.num_vertices)))
    return pattern, list(perm)


class TestDeterminism:
    @given(name=_pattern_names, induced=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_feature_extraction_is_deterministic(self, name, induced):
        key = pattern_cache_key(PATTERNS[name], induced)
        first = query_features(GRAPH, FINGERPRINT, key)
        second = query_features(GRAPH, FINGERPRINT, key)
        assert first == second
        assert first.key() == second.key()
        assert analytic_work(first) == analytic_work(second)

    @given(name=_pattern_names, induced=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_plan_features_pure_function_of_key(self, name, induced):
        key = pattern_cache_key(PATTERNS[name], induced)
        # bypass the lru_cache: a freshly computed record must equal the
        # cached one, so memoisation never changes the answer
        assert plan_features(key) == plan_features.__wrapped__(key)


class TestRelabelingInvariance:
    @given(pp=pattern_and_permutation(), induced=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_cache_key_is_relabeling_invariant(self, pp, induced):
        pattern, perm = pp
        relabeled = pattern.relabeled(perm)
        assert pattern_cache_key(relabeled, induced) == \
            pattern_cache_key(pattern, induced)

    @given(pp=pattern_and_permutation(), induced=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_features_are_relabeling_invariant(self, pp, induced):
        pattern, perm = pp
        original = query_features(
            GRAPH, FINGERPRINT, pattern_cache_key(pattern, induced)
        )
        relabeled = query_features(
            GRAPH, FINGERPRINT,
            pattern_cache_key(pattern.relabeled(perm), induced),
        )
        # identical feature vector → identical predictor training key and
        # identical analytic work, which is the property the EWMA relies on
        assert original == relabeled

    @given(pp=pattern_and_permutation())
    @settings(max_examples=30, deadline=None)
    def test_labelled_patterns_stay_invariant(self, pp):
        pattern, perm = pp
        labelled = pattern.with_labels(
            [v % 3 for v in range(pattern.num_vertices)]
        )
        key_a = pattern_cache_key(labelled, True)
        key_b = pattern_cache_key(labelled.relabeled(perm), True)
        assert key_a == key_b
        features = query_features(GRAPH, FINGERPRINT, key_a)
        assert features.labelled
        assert features == query_features(GRAPH, FINGERPRINT, key_b)
