"""Shared-memory graph store: roundtrips, lifecycle, service integration.

The contract under test (see ``repro/graph/store.py``):

* a graph shared into a segment attaches back byte-identical and
  zero-copy in any process that holds the :class:`SharedGraphRef`;
* exactly one owner unlinks — ``unregister``/``close``/``release`` — and
  unlink is idempotent and safe while attachments exist;
* thread/inline service pools never build pickle payloads or segments
  (the lazy-ship fix), and process pools attach instead of unpickling;
* after ``QueryService.shutdown()`` no segment survives.
"""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.errors import GraphFormatError, ServiceError
from repro.graph import (
    CSRGraph,
    attach_graph,
    erdos_renyi,
    share_graph,
    shm_available,
)
from repro.graph.store import DISABLE_ENV, GraphSegment
from repro.service import QueryService
from repro.service.registry import GraphRecord, GraphRegistry
from repro.service.worker import worker_graph_cache_info

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)


def shm_segments() -> list[str]:
    """Graph-store segments currently visible in /dev/shm (Linux)."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available")
    return [f for f in os.listdir("/dev/shm") if f.startswith("xset-")]


@pytest.fixture
def labeled_graph():
    g = erdos_renyi(120, 8.0, seed=11, name="shm-labeled")
    g.labels = np.arange(g.num_vertices, dtype=np.int64) % 3
    return g


class TestRoundtrip:
    def test_share_attach_roundtrip(self, medium_er):
        segment = share_graph(medium_er)
        try:
            attached = attach_graph(segment.ref)
            g = attached.graph
            assert np.array_equal(g.indptr, medium_er.indptr)
            assert np.array_equal(g.indices, medium_er.indices)
            assert g.name == medium_er.name
            assert g.fingerprint() == medium_er.fingerprint()
            attached.close()
        finally:
            segment.unlink()

    def test_attached_arrays_are_views_not_copies(self, medium_er):
        segment = share_graph(medium_er)
        try:
            attached = attach_graph(segment.ref)
            # zero-copy: the arrays alias the shm buffer, they don't own
            # their data
            assert not attached.graph.indptr.flags.owndata
            assert not attached.graph.indices.flags.owndata
            attached.close()
        finally:
            segment.unlink()

    def test_labels_roundtrip_with_alignment(self, labeled_graph):
        segment = share_graph(labeled_graph)
        try:
            assert segment.ref.has_labels
            # int64 labels must land 8-byte aligned after int32 indices
            assert segment.ref.labels_offset % 8 == 0
            attached = attach_graph(segment.ref)
            assert np.array_equal(attached.graph.labels, labeled_graph.labels)
            assert attached.graph.fingerprint() == labeled_graph.fingerprint()
            attached.close()
        finally:
            segment.unlink()

    def test_ref_is_picklable_and_small(self, medium_er):
        import pickle

        segment = share_graph(medium_er)
        try:
            blob = pickle.dumps(segment.ref)
            # the whole point: the per-job payload is a handle, not the CSR
            assert len(blob) < 1024
            assert pickle.loads(blob) == segment.ref
        finally:
            segment.unlink()


class TestLifecycle:
    def test_unlink_is_idempotent(self, small_er):
        segment = share_graph(small_er)
        segment.unlink()
        segment.unlink()  # second call must be a no-op

    def test_attach_after_unlink_raises(self, small_er):
        segment = share_graph(small_er)
        ref = segment.ref
        segment.unlink()
        with pytest.raises(FileNotFoundError):
            attach_graph(ref)

    def test_unlink_safe_while_attached(self, small_er):
        segment = share_graph(small_er)
        attached = attach_graph(segment.ref)
        segment.unlink()  # name gone, but the mapping stays valid
        assert int(attached.graph.indptr[-1]) == small_er.indices.size
        attached.close()

    def test_disable_env_gates_creation(self, small_er, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert not shm_available()
        with pytest.raises(GraphFormatError, match="unavailable"):
            GraphSegment.create(small_er)

    def test_no_segments_leak_from_this_module(self):
        # meaningful because this file creates/unlinks many segments above
        assert shm_segments() == []


class TestGraphRecordShip:
    def make_record(self, graph) -> GraphRecord:
        return GraphRecord(
            graph_id="g", graph=graph, fingerprint=graph.fingerprint()
        )

    def test_thread_and_inline_ship_live_object(self, small_er):
        record = self.make_record(small_er)
        assert record.ship("thread") is small_er
        assert record.ship("inline") is small_er
        # the lazy-payload fix: nothing was pickled, no segment was built
        assert record._payload is None
        assert not record.shared

    def test_process_ship_creates_segment_once(self, small_er):
        record = self.make_record(small_er)
        try:
            ref1 = record.ship("process")
            ref2 = record.ship("process")
            assert ref1 is ref2
            assert ref1.fingerprint == small_er.fingerprint()
            assert record.shared
            assert record._payload is None  # no pickle on the shm path
        finally:
            record.release()

    def test_process_ship_falls_back_to_pickle_when_disabled(
        self, small_er, monkeypatch
    ):
        monkeypatch.setenv(DISABLE_ENV, "1")
        record = self.make_record(small_er)
        payload = record.ship("process")
        assert isinstance(payload, bytes)
        assert not record.shared

    def test_release_unlinks_and_is_idempotent(self, small_er):
        record = self.make_record(small_er)
        ref = record.ship("process")
        record.release()
        record.release()
        assert not record.shared
        with pytest.raises(FileNotFoundError):
            attach_graph(ref)


class TestRegistryLifecycle:
    def test_unregister_unlinks(self, small_er):
        registry = GraphRegistry()
        gid = registry.register(small_er, "g")
        ref = registry.get(gid).ship("process")
        registry.unregister(gid)
        assert gid not in registry
        with pytest.raises(FileNotFoundError):
            attach_graph(ref)

    def test_close_unlinks_every_segment(self, small_er, medium_er):
        registry = GraphRegistry()
        refs = []
        for gid, g in (("a", small_er), ("b", medium_er)):
            registry.register(g, gid)
            refs.append(registry.get(gid).ship("process"))
        registry.close()
        for ref in refs:
            with pytest.raises(FileNotFoundError):
                attach_graph(ref)

    def test_update_retires_old_segment_via_finalizer(self, small_er):
        registry = GraphRegistry()
        registry.register(small_er, "g")
        old_record = registry.get("g")
        old_ref = old_record.ship("process")
        replacement = erdos_renyi(40, 5.0, seed=99, name="replacement")
        registry.update("g", replacement)
        # queued jobs would pin the old record; here nothing does, so GC
        # runs its finalizer and the retired segment disappears
        del old_record
        gc.collect()
        with pytest.raises(FileNotFoundError):
            attach_graph(old_ref)

    def test_unknown_id_raises(self):
        registry = GraphRegistry()
        with pytest.raises(ServiceError, match="unknown graph id"):
            registry.get("nope")


class TestServiceIntegration:
    def test_thread_pool_never_builds_shipping_artifacts(self, medium_er):
        from repro.patterns import PATTERNS

        with QueryService(mode="thread", max_workers=2) as svc:
            gid = svc.register_graph(medium_er, "g")
            svc.submit(gid, PATTERNS["3CF"]).result(timeout=60)
            record = svc._registry.get(gid)
            assert record._payload is None
            assert not record.shared

    def test_process_pool_attaches_instead_of_unpickling(self, medium_er):
        from repro.patterns import PATTERNS

        svc = QueryService(mode="process", max_workers=1)
        try:
            gid = svc.register_graph(medium_er, "g")
            r1 = svc.submit(gid, PATTERNS["3CF"], use_cache=False).result(
                timeout=120
            )
            r2 = svc.submit(gid, PATTERNS["TT"], use_cache=False).result(
                timeout=120
            )
            assert r1.embeddings >= 0 and r2.embeddings >= 0
            info = svc._executor.submit(worker_graph_cache_info).result()
            # the acceptance criterion: the worker attached the segment
            # exactly once and never unpickled a CSR payload
            assert info["attaches"] == 1
            assert info["fills"] == 0
            assert info["graphs"] == [gid]
            ref = svc._registry.get(gid).ship("process")
        finally:
            svc.shutdown()
        # all segments unlinked on shutdown
        with pytest.raises(FileNotFoundError):
            attach_graph(ref)
        assert shm_segments() == []

    def test_process_pool_counts_match_inline(self, medium_er):
        from repro.patterns import PATTERNS

        with QueryService(mode="inline") as inline_svc:
            gid = inline_svc.register_graph(medium_er, "g")
            want = inline_svc.count(gid, PATTERNS["TT"]).embeddings
        svc = QueryService(mode="process", max_workers=1)
        try:
            gid = svc.register_graph(medium_er, "g")
            got = svc.count(gid, PATTERNS["TT"]).embeddings
        finally:
            svc.shutdown()
        assert got == want

    def test_unregister_graph_drops_segment_and_cache(self, small_er):
        from repro.patterns import PATTERNS

        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(small_er, "g")
            svc.count(gid, PATTERNS["3CF"])
            ref = svc._registry.get(gid).ship("process")
            dropped = svc.unregister_graph(gid)
            assert dropped >= 1
            assert gid not in svc.graphs()
            with pytest.raises(FileNotFoundError):
                attach_graph(ref)
