"""Tests for the analysis/experiment helpers."""

import math

import pytest

from repro.analysis import (
    format_table,
    geomean,
    plan_cache,
    run_grid,
    run_workload,
)
from repro.core import xset_default
from repro.patterns import PATTERNS


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0, -1.0]) == pytest.approx(4.0)

    def test_log_identity(self):
        vals = [1.5, 2.5, 9.0, 0.3]
        assert math.log(geomean(vals)) == pytest.approx(
            sum(math.log(v) for v in vals) / len(vals)
        )


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a  ")

    def test_title(self):
        text = format_table(["x"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestRunners:
    def test_run_workload_small(self):
        report = run_workload("PP", "3CF", scale=0.05)
        assert report.embeddings >= 0
        assert report.cycles > 0

    def test_plan_cache_memoises(self):
        a = plan_cache(PATTERNS["3CF"])
        b = plan_cache(PATTERNS["3CF"])
        assert a is b

    def test_run_grid(self):
        grid = run_grid(
            config=xset_default(),
            datasets=("PP",),
            patterns=("3CF", "DIA"),
            scale=0.05,
        )
        assert set(grid.reports) == {("PP", "3CF"), ("PP", "DIA")}
        assert grid.seconds("PP", "3CF") > 0
