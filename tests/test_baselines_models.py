"""Deeper tests of the CPU/GPU baseline cost models."""

import pytest

from repro.baselines import GLUMIN, GRAPHPI, GRAPHSET, CpuBaselineModel
from repro.baselines.software import GpuBaselineModel
from repro.graph import erdos_renyi, powerlaw_graph
from repro.patterns import PATTERNS, build_plan, count_embeddings


@pytest.fixture(scope="module")
def workload():
    g = erdos_renyi(120, 10.0, seed=14)
    plan = build_plan(PATTERNS["3CF"])
    stats = count_embeddings(g, plan)
    return g, plan, stats


class TestCpuModel:
    def test_more_cores_faster(self, workload):
        g, plan, stats = workload
        small = CpuBaselineModel(name="c8", cores=8)
        big = CpuBaselineModel(name="c96", cores=96)
        assert big.estimate(g, plan, stats).seconds < small.estimate(
            g, plan, stats
        ).seconds

    def test_memory_bound_detection(self, workload):
        g, plan, stats = workload
        starved = CpuBaselineModel(
            name="slowmem", mem_bandwidth_gbps=0.001
        )
        assert starved.estimate(g, plan, stats).bound == "memory"

    def test_compute_bound_default(self, workload):
        g, plan, stats = workload
        assert GRAPHPI.estimate(g, plan, stats).bound == "compute"

    def test_graphset_faster_than_graphpi(self, workload):
        g, plan, stats = workload
        assert (
            GRAPHSET.estimate(g, plan, stats).seconds
            < GRAPHPI.estimate(g, plan, stats).seconds
        )

    def test_result_carries_workload_names(self, workload):
        g, plan, stats = workload
        r = GRAPHPI.estimate(g, plan, stats)
        assert r.system == "GraphPi"
        assert r.pattern_name == "3CF"


class TestGpuModel:
    def test_lut_penalty_for_hub_graphs(self):
        plan = build_plan(PATTERNS["3CF"])
        small_hub = powerlaw_graph(600, 8.0, 100, seed=3, name="nohub")
        big_hub = powerlaw_graph(600, 8.0, 590, seed=3, name="hub")
        s_small = count_embeddings(small_hub, plan)
        s_big = count_embeddings(big_hub, plan)
        model = GpuBaselineModel(lut_degree_limit=100)
        r_small = model.estimate(small_hub, plan, s_small)
        r_big = model.estimate(big_hub, plan, s_big)
        # per unit of work, the hub graph is penalised
        small_rate = r_small.compute_seconds / max(
            s_small.words_in + s_small.words_out, 1
        )
        big_rate = r_big.compute_seconds / max(
            s_big.words_in + s_big.words_out, 1
        )
        assert big_rate > small_rate

    def test_underutilisation_on_tiny_workloads(self, workload):
        g, plan, stats = workload
        tiny = GpuBaselineModel(min_words_to_saturate=1e12)
        full = GpuBaselineModel(min_words_to_saturate=1.0)
        assert (
            tiny.estimate(g, plan, stats).compute_seconds
            > full.estimate(g, plan, stats).compute_seconds
        )

    def test_launch_overhead_floor(self, workload):
        g, plan, stats = workload
        r = GLUMIN.estimate(g, plan, stats)
        assert r.seconds >= GLUMIN.launch_overhead_s
