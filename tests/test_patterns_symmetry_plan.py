"""Symmetry breaking and plan generation: the correctness heart of GPM.

The load-bearing property: for every pattern and graph,
``plan count == labelled embeddings / |Aut(P)|`` — restrictions admit
exactly one representative per automorphism orbit (GraphZero's theorem).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.graph import erdos_renyi
from repro.patterns import (
    PATTERNS,
    Restriction,
    build_plan,
    choose_order,
    count_embeddings,
    count_unique_embeddings,
    motif_patterns,
    symmetry_restrictions,
)

ALL_PATTERNS = ["3CF", "4CF", "5CF", "TT", "CYC", "DIA", "WEDGE", "HOUSE",
                "C5", "P3"]


class TestRestrictions:
    def test_diamond_matches_paper(self):
        """Figure 1b: the diamond needs exactly two restrictions."""
        rs = symmetry_restrictions(PATTERNS["DIA"])
        assert len(rs) == 2

    def test_triangle_total_order(self):
        rs = symmetry_restrictions(PATTERNS["3CF"])
        assert set(rs) == {
            Restriction(0, 1), Restriction(0, 2), Restriction(1, 2)
        }

    def test_no_restrictions_for_asymmetric_pattern(self):
        from repro.patterns import Pattern

        # a triangle with one tail on vertex 0 and a 2-path tail on vertex 1
        p = Pattern.from_edges(
            "asym", [(0, 1), (0, 2), (1, 2), (0, 3), (1, 4), (4, 5)]
        )
        assert p.automorphism_count() == 1
        assert symmetry_restrictions(p) == ()

    def test_greater_is_min_moved_vertex(self):
        for name in ALL_PATTERNS:
            for r in symmetry_restrictions(PATTERNS[name]):
                assert r.greater < r.smaller  # index-wise, by construction


class TestOrders:
    @pytest.mark.parametrize("name", ALL_PATTERNS)
    def test_orders_are_connected(self, name):
        p = PATTERNS[name]
        order = choose_order(p)
        assert sorted(order) == list(range(p.num_vertices))
        for i in range(1, len(order)):
            assert any(p.adjacent(order[j], order[i]) for j in range(i))

    def test_starts_at_max_degree(self):
        assert choose_order(PATTERNS["TT"])[0] == 0  # the degree-3 vertex


class TestPlanCorrectness:
    @pytest.mark.parametrize("name", ALL_PATTERNS)
    def test_count_equals_bruteforce(self, name, small_er):
        pat = PATTERNS[name]
        plan = build_plan(pat)
        got = count_embeddings(small_er, plan).embeddings
        want = count_unique_embeddings(small_er, pat, induced=plan.induced)
        assert got == want

    @pytest.mark.parametrize("name", ["3CF", "DIA", "CYC", "TT"])
    @pytest.mark.parametrize("induced", [False, True])
    def test_both_semantics(self, name, induced, small_er):
        pat = PATTERNS[name]
        plan = build_plan(pat, induced=induced)
        got = count_embeddings(small_er, plan).embeddings
        want = count_unique_embeddings(small_er, pat, induced=induced)
        assert got == want

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_diamond_property_random_graphs(self, seed):
        g = erdos_renyi(16, 5.0, seed=seed)
        plan = build_plan(PATTERNS["DIA"])
        assert (
            count_embeddings(g, plan).embeddings
            == count_unique_embeddings(g, PATTERNS["DIA"])
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_cycle_induced_property_random_graphs(self, seed):
        g = erdos_renyi(14, 5.0, seed=seed)
        plan = build_plan(PATTERNS["CYC"])
        assert plan.induced
        assert (
            count_embeddings(g, plan).embeddings
            == count_unique_embeddings(g, PATTERNS["CYC"], induced=True)
        )

    def test_all_4_motifs_against_bruteforce(self, small_er):
        for pat in motif_patterns(4):
            plan = build_plan(pat, induced=True)
            got = count_embeddings(small_er, plan).embeddings
            want = count_unique_embeddings(small_er, pat, induced=True)
            assert got == want, pat.name


class TestPlanStructure:
    def test_diamond_uses_choose2(self):
        assert build_plan(PATTERNS["DIA"]).collection == "choose2"

    def test_cliques_use_count_last(self):
        for name in ("3CF", "4CF", "5CF"):
            assert build_plan(PATTERNS[name]).collection == "count_last"

    def test_clique_prefix_reuse_one_op_per_level(self):
        plan = build_plan(PATTERNS["5CF"])
        for lv in plan.levels[2:]:
            assert lv.base == lv.position - 1
            assert lv.num_set_ops == 1

    def test_induced_cycle_has_difference_ops(self):
        plan = build_plan(PATTERNS["CYC"])
        assert any(lv.extra_anti or lv.anti_deps for lv in plan.levels)

    def test_enumerate_collection(self):
        plan = build_plan(PATTERNS["DIA"], collection="enumerate")
        assert plan.collection == "enumerate"

    def test_choose2_rejected_when_inapplicable(self):
        with pytest.raises(PlanError):
            build_plan(PATTERNS["3CF"], collection="choose2")

    def test_bad_collection_rejected(self):
        with pytest.raises(PlanError):
            build_plan(PATTERNS["3CF"], collection="bogus")

    def test_bad_order_rejected(self):
        with pytest.raises(PlanError):
            build_plan(PATTERNS["3CF"], order=[0, 0, 1])

    def test_custom_order_still_correct(self, small_er):
        pat = PATTERNS["DIA"]
        default = count_embeddings(small_er, build_plan(pat)).embeddings
        for order in ([0, 1, 2, 3], [1, 0, 3, 2]):
            plan = build_plan(pat, order=order)
            assert count_embeddings(small_er, plan).embeddings == default

    def test_describe_mentions_restrictions(self):
        text = build_plan(PATTERNS["DIA"]).describe()
        assert "restrictions" in text
        assert "u0" in text


class TestEnumeration:
    def test_enumerated_embeddings_are_valid(self, small_er):
        from repro.patterns import enumerate_embeddings

        pat = PATTERNS["3CF"]
        plan = build_plan(pat, collection="enumerate")
        count = 0
        for emb in enumerate_embeddings(small_er, plan):
            count += 1
            assert len(set(emb)) == 3
            u, v, w = emb
            assert small_er.has_edge(u, v)
            assert small_er.has_edge(v, w)
            assert small_er.has_edge(u, w)
        assert count == count_unique_embeddings(small_er, pat)

    def test_enumerate_requires_enumerate_plan(self, small_er):
        from repro.patterns import enumerate_embeddings

        plan = build_plan(PATTERNS["3CF"])
        with pytest.raises(PlanError):
            next(enumerate_embeddings(small_er, plan))
