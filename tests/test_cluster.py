"""The sharded query cluster: comm, partitioning, equivalence, chaos."""

import os
import pickle

import numpy as np
import pytest

from repro.cluster import (
    Coordinator,
    LocalCluster,
    ShardWorker,
    available_transports,
    contiguous_cuts,
    get_transport,
    halo_vertices,
    induced_subgraph,
    make_shards,
    merge_reports,
)
from repro.cluster.comm.base import (
    decode_body,
    encode_frame,
    frame_size,
)
from repro.core.config import xset_default
from repro.errors import (
    ClusterError,
    CommClosedError,
    CommError,
    ConfigError,
)
from repro.graph import CSRGraph, erdos_renyi
from repro.patterns import PATTERNS, build_plan
from repro.resilience import HealthState
from repro.sim.host import run_on_soc
from repro.sim.report import SimReport


def shm_segments():
    """Graph-store segments currently visible in /dev/shm (Linux)."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available")
    return [f for f in os.listdir("/dev/shm") if f.startswith("xset-")]


def star_graph(n=60):
    """One hub adjacent to everyone plus a rim path: boundary-heavy."""
    edges = [(0, i) for i in range(1, n)]
    edges += [(i, i + 1) for i in range(1, n - 1)]
    return CSRGraph.from_edges(n, edges, name=f"star{n}")


def near_clique(n=24):
    """A clique with a few spokes knocked out: dense cross-shard edges."""
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if (u * 7 + v) % 11 != 0
    ]
    return CSRGraph.from_edges(n, edges, name=f"nearclique{n}")


# -- comm layer -------------------------------------------------------------


class TestComm:
    def test_frame_roundtrip(self):
        frame = encode_frame({"op": "ping", "n": 3})
        size = frame_size(frame[:8])
        assert size == len(frame) - 8
        assert decode_body(frame[8:]) == {"op": "ping", "n": 3}

    def test_frame_size_cap(self):
        import struct

        with pytest.raises(CommError):
            frame_size(struct.pack(">Q", 1 << 40))

    def test_transport_registry(self):
        assert "inproc" in available_transports()
        assert "tcp" in available_transports()
        with pytest.raises(CommError):
            get_transport("carrier-pigeon")

    @pytest.mark.parametrize("name", ["inproc", "tcp"])
    def test_request_roundtrip(self, name):
        transport = get_transport(name)
        listener = transport.listen(lambda p: {"echo": p}, name="t")
        try:
            conn = transport.connect(listener.address)
            assert conn.request([1, "two"], timeout=10) == {
                "echo": [1, "two"]
            }
            conn.close()
        finally:
            listener.close()

    @pytest.mark.parametrize("name", ["inproc", "tcp"])
    def test_handler_exception_propagates(self, name):
        def boom(payload):
            raise ValueError("nope")

        transport = get_transport(name)
        listener = transport.listen(boom)
        try:
            conn = transport.connect(listener.address)
            with pytest.raises(ValueError, match="nope"):
                conn.request("x", timeout=10)
            conn.close()
        finally:
            listener.close()

    @pytest.mark.parametrize("name", ["inproc", "tcp"])
    def test_closed_listener_looks_dead(self, name):
        transport = get_transport(name)
        listener = transport.listen(lambda p: p)
        conn = transport.connect(listener.address)
        listener.close()
        with pytest.raises(CommClosedError):
            conn.request("hello", timeout=5)
        with pytest.raises(CommClosedError):
            transport.connect(listener.address)

    def test_inproc_address_is_fresh(self):
        transport = get_transport("inproc")
        a = transport.listen(lambda p: p)
        b = transport.listen(lambda p: p)
        assert a.address != b.address
        a.close()
        b.close()


# -- partitioning -----------------------------------------------------------


class TestPartition:
    def test_cuts_tile_the_range(self):
        g = erdos_renyi(97, 6.0, seed=2)
        cuts = contiguous_cuts(g.degrees, 5)
        assert cuts[0][0] == 0 and cuts[-1][1] == 97
        for (_, hi), (lo, _) in zip(cuts, cuts[1:]):
            assert hi == lo
        # degree-balanced: no shard hoards most of the edge mass
        masses = [int(g.degrees[lo:hi].sum()) for lo, hi in cuts]
        assert max(masses) < g.degrees.sum() * 0.6

    def test_more_shards_than_vertices(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        cuts = contiguous_cuts(g.degrees, 7)
        assert len(cuts) == 7
        assert sum(hi - lo for lo, hi in cuts) == 3

    def test_halo_reaches_hops(self):
        g = star_graph(20)  # rim vertex i is 2 hops from rim vertex j
        one = halo_vertices(g, 5, 6, hops=1)
        # vertex 5's neighbours: hub 0 and rim 4, 6
        assert set(one.tolist()) == {0, 4, 5, 6}
        two = halo_vertices(g, 5, 6, hops=2)
        assert set(two.tolist()) == set(range(20))  # hub reaches all

    def test_induced_subgraph_preserves_order(self, toy_graph):
        vertices = np.array([1, 3, 4, 5], dtype=np.int64)
        sub = induced_subgraph(toy_graph, vertices, name="sub")
        assert sub.num_vertices == 4
        # local ids keep the global relative order (monotone compaction)
        for local, global_v in enumerate(vertices):
            expect = [
                int(np.searchsorted(vertices, w))
                for w in toy_graph.neighbors(global_v)
                if w in set(vertices.tolist())
            ]
            assert sub.neighbors(local).tolist() == expect
            assert sub.neighbors(local).tolist() == sorted(expect)

    def test_induced_subgraph_carries_labels(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)]).with_labels(
            [5, 6, 7, 8]
        )
        sub = induced_subgraph(g, np.array([1, 3]), name="sub")
        assert sub.labels.tolist() == [6, 8]

    def test_make_shards_owned_ranges_are_local_contiguous(self):
        g = erdos_renyi(80, 7.0, seed=4)
        specs = make_shards(g, num_shards=3, halo_hops=2)
        assert sum(s.owned for s in specs) == 80
        for spec in specs:
            owned_globals = spec.vertices[spec.local_lo:spec.local_hi]
            assert owned_globals.tolist() == list(range(spec.lo, spec.hi))

    def test_specs_pickle(self):
        g = erdos_renyi(40, 5.0, seed=9)
        spec = make_shards(g, num_shards=2, halo_hops=2)[0]
        again = pickle.loads(pickle.dumps(spec))
        assert again.graph.num_vertices == spec.graph.num_vertices


# -- merge ------------------------------------------------------------------


class TestMerge:
    def test_sums_and_maxes(self):
        a = SimReport(embeddings=3, tasks=10, cycles=100.0,
                      host_cycles=5.0, siu_busy_cycles=50.0, num_sius=4,
                      dram_bytes=64, wall_seconds=0.5)
        b = SimReport(embeddings=4, tasks=7, cycles=80.0,
                      host_cycles=9.0, siu_busy_cycles=40.0, num_sius=4,
                      dram_bytes=32, wall_seconds=0.9)
        merged = merge_reports([a, b], graph_name="g", pattern_name="p")
        assert merged.embeddings == 7
        assert merged.tasks == 17
        assert merged.cycles == 100.0       # makespan
        assert merged.host_cycles == 9.0
        assert merged.wall_seconds == 0.9
        assert merged.num_sius == 8
        assert merged.dram_bytes == 96
        assert merged.graph_name == "g"

    def test_empty_raises(self):
        with pytest.raises(ClusterError):
            merge_reports([])


# -- end-to-end equivalence -------------------------------------------------


def _reference(graph, pattern, induced=None):
    cfg = xset_default(engine="batched")
    return run_on_soc(graph, build_plan(pattern, induced=induced),
                      cfg).embeddings


class TestEquivalence:
    """Sharded counts == single-node batched counts, exactly."""

    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    @pytest.mark.parametrize("pattern", ["3CF", "4CF", "DIA", "TT"])
    def test_er_graph(self, shards, pattern):
        g = erdos_renyi(120, 9.0, seed=6, name="er120")
        expected = _reference(g, PATTERNS[pattern])
        cfg = xset_default(engine="batched")
        with LocalCluster(num_shards=shards, config=cfg) as cluster:
            gid = cluster.coordinator.register_graph(g)
            assert cluster.coordinator.count(
                gid, PATTERNS[pattern]
            ) == expected

    @pytest.mark.parametrize("shards", [2, 4, 7])
    @pytest.mark.parametrize("make", [star_graph, near_clique])
    def test_boundary_heavy_topologies(self, shards, make):
        g = make()
        cfg = xset_default(engine="batched")
        for pattern in ("3CF", "WEDGE", "DIA"):
            expected = _reference(g, PATTERNS[pattern])
            with LocalCluster(num_shards=shards, config=cfg) as cluster:
                gid = cluster.coordinator.register_graph(g)
                assert cluster.coordinator.count(
                    gid, PATTERNS[pattern]
                ) == expected, (make.__name__, pattern, shards)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_labeled(self, shards, rng):
        g = erdos_renyi(90, 8.0, seed=12).with_labels(
            rng.integers(0, 3, 90)
        )
        pattern = PATTERNS["3CF"].with_labels([0, 1, 2])
        expected = _reference(g, pattern)
        cfg = xset_default(engine="batched")
        with LocalCluster(num_shards=shards, config=cfg) as cluster:
            gid = cluster.coordinator.register_graph(g)
            assert cluster.coordinator.count(gid, pattern) == expected

    def test_event_engine_and_tcp(self):
        g = erdos_renyi(70, 7.0, seed=8)
        cfg = xset_default()  # event engine
        expected = run_on_soc(g, build_plan(PATTERNS["3CF"]),
                              cfg).embeddings
        with LocalCluster(
            num_shards=3, config=cfg, transport="tcp", mode="thread",
            max_workers=1,
        ) as cluster:
            gid = cluster.coordinator.register_graph(g)
            assert cluster.coordinator.count(
                gid, PATTERNS["3CF"]
            ) == expected

    def test_merged_report_accounting(self):
        g = erdos_renyi(100, 8.0, seed=3)
        cfg = xset_default(engine="batched")
        with LocalCluster(num_shards=4, config=cfg) as cluster:
            gid = cluster.coordinator.register_graph(g)
            report = cluster.coordinator.query(gid, PATTERNS["3CF"])
        info = report.notes["cluster"]
        assert info["partial"] is False
        assert info["ok"] == info["queried"]
        assert report.graph_name == gid
        assert report.pattern_name == "3CF"
        assert report.tasks > 0 and report.cycles > 0


# -- coordinator semantics --------------------------------------------------


class TestCoordinator:
    def test_unknown_graph(self):
        with LocalCluster(num_shards=2) as cluster:
            with pytest.raises(ClusterError, match="unknown cluster"):
                cluster.coordinator.query(
                    "missing", PATTERNS["3CF"]
                )

    def test_duplicate_register(self, small_er):
        with LocalCluster(num_shards=2) as cluster:
            cluster.coordinator.register_graph(small_er)
            with pytest.raises(ClusterError, match="already registered"):
                cluster.coordinator.register_graph(small_er)

    def test_unregister(self, small_er):
        with LocalCluster(num_shards=2) as cluster:
            gid = cluster.coordinator.register_graph(small_er)
            assert gid in cluster.coordinator.graphs()
            cluster.coordinator.unregister_graph(gid)
            assert cluster.coordinator.graphs() == ()
            with pytest.raises(ClusterError):
                cluster.coordinator.query(gid, PATTERNS["3CF"])

    def test_halo_too_shallow_rejected(self, small_er):
        cfg = xset_default(engine="batched", cluster_halo_hops=1)
        with LocalCluster(num_shards=2, config=cfg) as cluster:
            gid = cluster.coordinator.register_graph(small_er)
            # 3CF needs stop_level 2 > halo 1
            with pytest.raises(ClusterError, match="halo"):
                cluster.coordinator.query(gid, PATTERNS["3CF"])

    def test_halo_config_validated(self):
        with pytest.raises(ConfigError):
            xset_default(cluster_halo_hops=0)
        with pytest.raises(ConfigError):
            xset_default(cluster_shards=-1)

    def test_needs_a_shard(self):
        with pytest.raises(ClusterError):
            Coordinator([], "inproc")

    def test_cluster_shards_config_drives_local_cluster(self):
        cfg = xset_default(engine="batched", cluster_shards=3)
        with LocalCluster(config=cfg) as cluster:
            assert len(cluster.workers) == 3


# -- resilience / chaos -----------------------------------------------------


class TestChaos:
    def test_killed_shard_degrades_not_fails(self):
        g = erdos_renyi(100, 8.0, seed=5)
        cfg = xset_default(engine="batched")
        expected = _reference(g, PATTERNS["3CF"])
        with LocalCluster(num_shards=4, config=cfg) as cluster:
            gid = cluster.coordinator.register_graph(g)
            name = cluster.kill_shard(1)
            report = cluster.coordinator.query(gid, PATTERNS["3CF"])
            info = report.notes["cluster"]
            assert info["partial"] is True
            assert name in info["failed_shards"]
            # surviving shards still answered; the merged count is a
            # strict subset of the true total
            assert 0 < report.embeddings < expected
            # strict count() refuses partial results
            with pytest.raises(ClusterError, match="partial"):
                cluster.coordinator.count(gid, PATTERNS["3CF"])

    def test_dead_shard_degrades_health(self):
        with LocalCluster(num_shards=3) as cluster:
            assert cluster.coordinator.health().state is (
                HealthState.HEALTHY
            )
            name = cluster.kill_shard(2)
            health = cluster.coordinator.health()
            assert health.state is HealthState.DEGRADED
            assert name in health.dead
            assert name.upper() in health.summary().upper()

    def test_breaker_opens_after_failures(self, small_er):
        cfg = xset_default(engine="batched")
        with LocalCluster(num_shards=2, config=cfg) as cluster:
            gid = cluster.coordinator.register_graph(small_er)
            cluster.kill_shard(0)
            # breaker threshold is 2: two failing scatters trip it
            cluster.coordinator.query(gid, PATTERNS["3CF"])
            cluster.coordinator.query(gid, PATTERNS["WEDGE"])
            snaps = cluster.coordinator._breakers.snapshots()
            assert snaps["shard0"].state == "open"
            # the next query skips the dead shard fast (breaker path)
            report = cluster.coordinator.query(gid, PATTERNS["DIA"])
            assert report.notes["cluster"]["partial"] is True

    def test_all_shards_dead_raises(self, small_er):
        with LocalCluster(num_shards=2) as cluster:
            gid = cluster.coordinator.register_graph(small_er)
            cluster.kill_shard(0)
            cluster.kill_shard(1)
            with pytest.raises(ClusterError, match="every"):
                cluster.coordinator.query(gid, PATTERNS["3CF"])


# -- shared-memory hygiene --------------------------------------------------


class TestShmHygiene:
    def test_cluster_shutdown_unlinks_segments(self):
        g = erdos_renyi(80, 7.0, seed=2, name="shm-clean")
        cfg = xset_default(engine="batched")
        before = shm_segments()
        cluster = LocalCluster(
            num_shards=2, config=cfg, mode="process", max_workers=1
        )
        try:
            gid = cluster.coordinator.register_graph(g)
            cluster.coordinator.count(gid, PATTERNS["3CF"])
            assert len(shm_segments()) >= len(before)
        finally:
            cluster.shutdown()
        assert shm_segments() == before

    def test_killed_shard_segments_still_reclaimed(self):
        g = erdos_renyi(80, 7.0, seed=2, name="shm-chaos")
        cfg = xset_default(engine="batched")
        before = shm_segments()
        cluster = LocalCluster(
            num_shards=2, config=cfg, mode="process", max_workers=1
        )
        try:
            gid = cluster.coordinator.register_graph(g)
            cluster.coordinator.count(gid, PATTERNS["3CF"])
            cluster.kill_shard(0)
        finally:
            cluster.shutdown()
        assert shm_segments() == before

    def test_registry_close_unlinks_retired_records(self):
        """update() then close() must not orphan the old snapshot."""
        from repro.graph.store import shm_available
        from repro.service.registry import GraphRegistry

        if not shm_available():  # pragma: no cover - env-dependent
            pytest.skip("shared memory unavailable")
        before = shm_segments()
        registry = GraphRegistry()
        g1 = erdos_renyi(40, 5.0, seed=1, name="retire")
        g2 = erdos_renyi(40, 5.0, seed=2, name="retire")
        registry.register(g1, "retire")
        record = registry.get("retire")
        record.ship("process")          # create the segment
        registry.update("retire", g2)   # retires the old record
        registry.get("retire").ship("process")
        assert len(shm_segments()) == len(before) + 2
        registry.close()
        assert shm_segments() == before


# -- worker-level details ---------------------------------------------------


class TestShardWorker:
    def test_unknown_op_rejected(self):
        transport = get_transport("inproc")
        worker = ShardWorker("w", transport)
        try:
            conn = transport.connect(worker.address)
            with pytest.raises(ClusterError, match="unknown cluster op"):
                conn.request({"op": "frobnicate"})
            with pytest.raises(ClusterError, match="malformed"):
                conn.request("not-a-dict")
        finally:
            worker.close()

    def test_ping_stats_shutdown(self):
        transport = get_transport("inproc")
        worker = ShardWorker("w2", transport)
        conn = transport.connect(worker.address)
        assert conn.request({"op": "ping"}) == "pong"
        stats = conn.request({"op": "stats"})
        assert stats["name"] == "w2" and stats["queries"] == 0
        assert conn.request({"op": "shutdown"}) is True
        with pytest.raises(CommClosedError):
            conn.request({"op": "ping"})

    def test_query_without_register(self):
        transport = get_transport("inproc")
        worker = ShardWorker("w3", transport)
        try:
            conn = transport.connect(worker.address)
            with pytest.raises(ClusterError, match="no registered"):
                conn.request({
                    "op": "query", "graph_id": "nope",
                    "pattern": PATTERNS["3CF"],
                })
        finally:
            worker.close()
