"""Tests for pattern graphs and the registry."""

import pytest

from repro.errors import PatternError
from repro.patterns import PATTERNS, Pattern, motif_patterns


class TestRegistry:
    def test_paper_patterns_present(self):
        for name in ("3CF", "4CF", "5CF", "TT", "CYC", "DIA"):
            assert name in PATTERNS

    def test_clique_edge_counts(self):
        assert PATTERNS["3CF"].num_edges == 3
        assert PATTERNS["4CF"].num_edges == 6
        assert PATTERNS["5CF"].num_edges == 10

    def test_diamond_shape(self):
        dia = PATTERNS["DIA"]
        assert dia.num_vertices == 4
        assert dia.num_edges == 5
        degs = sorted(dia.degree(v) for v in range(4))
        assert degs == [2, 2, 3, 3]

    def test_tailed_triangle_shape(self):
        tt = PATTERNS["TT"]
        degs = sorted(tt.degree(v) for v in range(4))
        assert degs == [1, 2, 2, 3]

    def test_cycle_shape(self):
        cyc = PATTERNS["CYC"]
        assert all(cyc.degree(v) == 2 for v in range(4))


class TestConstruction:
    def test_from_edges_infers_size(self):
        p = Pattern.from_edges("path", [(0, 1), (1, 2)])
        assert p.num_vertices == 3

    def test_self_loop_rejected(self):
        with pytest.raises(PatternError):
            Pattern.from_edges("bad", [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(PatternError):
            Pattern("bad", 2, ((0, 1), (1, 0)))

    def test_disconnected_rejected(self):
        with pytest.raises(PatternError):
            Pattern("bad", 4, ((0, 1), (2, 3)))

    def test_out_of_range_rejected(self):
        with pytest.raises(PatternError):
            Pattern("bad", 2, ((0, 2),))

    def test_no_edges_rejected(self):
        with pytest.raises(PatternError):
            Pattern.from_edges("bad", [])

    def test_cycle_too_small_rejected(self):
        with pytest.raises(PatternError):
            Pattern.cycle(2)


class TestAutomorphisms:
    @pytest.mark.parametrize(
        "name,count",
        [
            ("3CF", 6),     # S3
            ("4CF", 24),    # S4
            ("5CF", 120),   # S5
            ("CYC", 8),     # dihedral D4
            ("DIA", 4),     # swap chord ends x swap wings
            ("TT", 2),      # swap the two free triangle vertices
            ("WEDGE", 2),
            ("P3", 2),
            ("C5", 10),
        ],
    )
    def test_known_group_orders(self, name, count):
        assert PATTERNS[name].automorphism_count() == count

    def test_automorphisms_preserve_edges(self):
        p = PATTERNS["DIA"]
        for sigma in p.automorphisms():
            for u, v in p.edge_list:
                assert p.adjacent(sigma[u], sigma[v])

    def test_relabeled_isomorphic(self):
        p = PATTERNS["TT"]
        q = p.relabeled([3, 2, 1, 0])
        assert q.automorphism_count() == p.automorphism_count()
        assert q.num_edges == p.num_edges

    def test_relabel_requires_permutation(self):
        with pytest.raises(PatternError):
            PATTERNS["3CF"].relabeled([0, 0, 1])


class TestQueries:
    def test_neighbors(self):
        dia = PATTERNS["DIA"]
        assert set(dia.neighbors(0)) == {1, 2, 3}

    def test_adjacent_symmetric(self):
        p = PATTERNS["HOUSE"]
        for u in range(p.num_vertices):
            for v in range(p.num_vertices):
                assert p.adjacent(u, v) == p.adjacent(v, u)


class TestMotifEnumeration:
    def test_three_vertex_motifs(self):
        motifs = motif_patterns(3)
        assert len(motifs) == 2  # wedge + triangle

    def test_four_vertex_motifs(self):
        motifs = motif_patterns(4)
        assert len(motifs) == 6  # path, star, cycle, tailed-tri, diamond, K4

    def test_invalid_size(self):
        with pytest.raises(PatternError):
            motif_patterns(9)
