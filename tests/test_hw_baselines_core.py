"""Tests for the area/power model, baseline models, and the core API."""

import pytest

from repro.baselines import (
    GLUMIN,
    GRAPHPI,
    GRAPHSET,
    compare_accelerators,
    compute_density_speedup,
    run_baseline,
)
from repro.core import (
    XSetAccelerator,
    config_table,
    count_motifs3,
    xset_default,
)
from repro.errors import ConfigError
from repro.hw import (
    pe_area_breakdown,
    scheduler_area_power,
    siu_area_power,
    theory_table_rows,
)
from repro.patterns import PATTERNS, count_embeddings, build_plan


class TestAreaModel:
    def test_pe_breakdown_matches_table4(self):
        bd = pe_area_breakdown()
        assert bd["control"] == pytest.approx(0.044, abs=0.004)
        assert bd["compute"] == pytest.approx(0.077, abs=0.006)
        assert bd["cache"] == pytest.approx(0.174, abs=0.005)
        assert bd["total"] == pytest.approx(0.305, abs=0.015)

    def test_order_aware_beats_sma_at_every_width(self):
        for n in (2, 4, 8, 16):
            oa = siu_area_power("order-aware", n)
            sma = siu_area_power("sma", n)
            assert oa.total_mm2 < sma.total_mm2
            assert oa.total_mw < sma.total_mw

    def test_savings_grow_with_width(self):
        """Figure 15: area/power advantage widens as N grows."""
        savings = [
            1 - siu_area_power("order-aware", n).total_mm2
            / siu_area_power("sma", n).total_mm2
            for n in (2, 4, 8, 16)
        ]
        assert savings == sorted(savings)
        assert 0.3 < savings[0] < savings[-1] < 0.85

    def test_power_saving_at_16_matches_paper_band(self):
        oa = siu_area_power("order-aware", 16)
        sma = siu_area_power("sma", 16)
        assert 1 - oa.total_mw / sma.total_mw == pytest.approx(0.754, abs=0.08)

    def test_merge_queue_tiny(self):
        mq = siu_area_power("merge", 1)
        assert mq.total_mm2 < siu_area_power("order-aware", 8).total_mm2 / 5

    def test_scheduler_area(self):
        area, power = scheduler_area_power()
        assert area == pytest.approx(0.044, abs=0.004)
        assert power > 0

    def test_io_held_constant_between_designs(self):
        oa = siu_area_power("order-aware", 8)
        sma = siu_area_power("sma", 8)
        assert oa.input_mm2 == sma.input_mm2
        assert oa.output_mm2 == sma.output_mm2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            siu_area_power("tpu", 8)

    def test_theory_table(self):
        rows = theory_table_rows(8)
        by_name = {r["architecture"]: r for r in rows}
        assert by_name["Merge Queue"]["comparators_n"] == 1
        assert by_name["Systolic Array"]["comparators_n"] == 64
        assert by_name["Order-Aware (ours)"]["comparators_n"] == 21
        assert by_name["Order-Aware (ours)"]["latency_n"] == 8


class TestSoftwareBaselines:
    def test_cpu_models_ordering(self, skewed_graph):
        """GraphSet must beat GraphPi on the same workload."""
        pi = run_baseline(GRAPHPI, skewed_graph, PATTERNS["3CF"])
        st = run_baseline(GRAPHSET, skewed_graph, PATTERNS["3CF"])
        assert st.seconds < pi.seconds
        assert pi.embeddings == st.embeddings

    def test_gpu_model_runs(self, skewed_graph):
        r = run_baseline(GLUMIN, skewed_graph, PATTERNS["3CF"])
        assert r.seconds > 0
        assert r.bound in ("compute", "memory")

    def test_baseline_counts_exact(self, medium_er):
        plan = build_plan(PATTERNS["DIA"])
        want = count_embeddings(medium_er, plan).embeddings
        r = run_baseline(GRAPHPI, medium_er, PATTERNS["DIA"], plan=plan)
        assert r.embeddings == want

    def test_more_work_costs_more(self, medium_er, skewed_graph):
        small = run_baseline(GRAPHPI, medium_er, PATTERNS["3CF"])
        big = run_baseline(GRAPHPI, skewed_graph, PATTERNS["3CF"])
        assert big.seconds > small.seconds


class TestAcceleratorComparison:
    def test_compare_runs_all_four(self, medium_er):
        cmp = compare_accelerators(medium_er, PATTERNS["3CF"])
        assert set(cmp.reports) == {"xset", "flexminer", "fingers", "shogun"}
        counts = {r.embeddings for r in cmp.reports.values()}
        assert len(counts) == 1  # all functional results identical

    def test_speedup_definition(self, medium_er):
        cmp = compare_accelerators(medium_er, PATTERNS["3CF"])
        s = cmp.speedup_over("xset")
        assert s == pytest.approx(
            cmp.seconds("flexminer") / cmp.seconds("xset")
        )

    def test_compute_density_favors_small_pe(self, medium_er):
        cmp = compare_accelerators(medium_er, PATTERNS["3CF"])
        density = compute_density_speedup(cmp, "xset", "fingers")
        end2end = cmp.seconds("fingers") / cmp.seconds("xset")
        # X-SET's PE is ~3x smaller than FINGERS': density gain > raw gain
        assert density > end2end


class TestCoreAPI:
    def test_count_and_enumerate_agree(self, medium_er):
        accel = XSetAccelerator()
        report = accel.count(medium_er, PATTERNS["3CF"])
        enumerated = sum(1 for _ in accel.enumerate(medium_er, PATTERNS["3CF"]))
        assert report.embeddings == enumerated

    def test_count_many(self, medium_er):
        accel = XSetAccelerator()
        reports = accel.count_many(
            medium_er, [PATTERNS["3CF"], PATTERNS["DIA"]]
        )
        assert set(reports) == {"3CF", "DIA"}

    def test_motif3(self, medium_er):
        motifs = count_motifs3(medium_er)
        assert motifs["triangle"] > 0
        assert motifs["wedge"] > 0

    def test_config_table_renders(self):
        text = config_table()
        assert "16" in text and "4.0MB" in text

    def test_config_overrides(self):
        cfg = xset_default(num_pes=4)
        assert cfg.num_pes == 4
        assert xset_default().num_pes == 16

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            xset_default(num_pes=0)
        with pytest.raises(ConfigError):
            xset_default(segment_width=6)

    def test_lazy_package_exports(self):
        import repro

        assert repro.PATTERNS["3CF"].num_vertices == 3
        assert repro.SystemConfig().num_pes == 16
        with pytest.raises(AttributeError):
            repro.does_not_exist
