"""Tests for the workload energy model."""

import pytest

from repro.core import XSetAccelerator, xset_default
from repro.graph import erdos_renyi
from repro.hw import EnergyReport, estimate_energy
from repro.patterns import PATTERNS


@pytest.fixture(scope="module")
def run_and_config():
    g = erdos_renyi(120, 10.0, seed=9)
    cfg = xset_default()
    report = XSetAccelerator(cfg).count(g, PATTERNS["3CF"])
    return report, cfg


class TestEnergy:
    def test_positive_components(self, run_and_config):
        report, cfg = run_and_config
        e = estimate_energy(report, cfg)
        for key, val in e.breakdown().items():
            assert val >= 0, key
        assert e.total_uj > 0

    def test_total_is_sum(self, run_and_config):
        report, cfg = run_and_config
        e = estimate_energy(report, cfg)
        assert e.total_uj == pytest.approx(sum(e.breakdown().values()))

    def test_energy_per_embedding(self, run_and_config):
        report, cfg = run_and_config
        e = estimate_energy(report, cfg)
        assert e.nj_per_embedding == pytest.approx(
            e.total_uj * 1e3 / report.embeddings
        )

    def test_zero_embeddings_is_inf(self):
        e = EnergyReport(0.1, 0.1, 0.1, 0.1, 0.1, embeddings=0)
        assert e.nj_per_embedding == float("inf")

    def test_sma_costs_more_compute_energy(self):
        g = erdos_renyi(120, 10.0, seed=9)
        oa_cfg = xset_default()
        sma_cfg = xset_default(siu_kind="sma", name="sma")
        oa = estimate_energy(
            XSetAccelerator(oa_cfg).count(g, PATTERNS["3CF"]), oa_cfg
        )
        sma = estimate_energy(
            XSetAccelerator(sma_cfg).count(g, PATTERNS["3CF"]), sma_cfg
        )
        assert sma.compute_uj > oa.compute_uj

    def test_more_work_more_energy(self):
        g = erdos_renyi(120, 10.0, seed=9)
        cfg = xset_default()
        accel = XSetAccelerator(cfg)
        e3 = estimate_energy(accel.count(g, PATTERNS["3CF"]), cfg)
        e4 = estimate_energy(accel.count(g, PATTERNS["4CF"]), cfg)
        assert e4.total_uj > e3.total_uj
