"""Labelled GPM: label-constrained patterns across the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import XSetAccelerator, xset_default
from repro.errors import GraphFormatError, PatternError
from repro.graph import CSRGraph, erdos_renyi
from repro.patterns import (
    PATTERNS,
    Pattern,
    build_plan,
    count_embeddings,
    count_unique_embeddings,
    symmetry_restrictions,
)


@pytest.fixture
def labeled_graph(rng):
    g = erdos_renyi(36, 7.0, seed=12)
    return g.with_labels(rng.integers(0, 3, g.num_vertices))


class TestLabelPlumbing:
    def test_labels_validated(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        with pytest.raises(GraphFormatError):
            g.with_labels([1, 2])  # wrong length

    def test_pattern_labels_validated(self):
        with pytest.raises(PatternError):
            PATTERNS["3CF"].with_labels([1, 2])

    def test_label_of(self):
        g = CSRGraph.from_edges(2, [(0, 1)]).with_labels([7, 9])
        assert g.label_of(1) == 9
        assert CSRGraph.from_edges(2, [(0, 1)]).label_of(0) is None

    def test_degree_relabel_moves_labels(self):
        g = CSRGraph.from_edges(
            4, [(0, 1), (0, 2), (0, 3), (1, 2)]
        ).with_labels([10, 11, 12, 13])
        h = g.relabeled_by_degree()
        # vertex 0 (degree 3) becomes vertex 0 after sorting; its label moves
        assert h.label_of(0) == 10
        assert sorted(h.labels.tolist()) == [10, 11, 12, 13]


class TestLabeledSymmetry:
    def test_labels_shrink_automorphisms(self):
        tri = PATTERNS["3CF"]
        assert tri.automorphism_count() == 6
        assert tri.with_labels([0, 0, 1]).automorphism_count() == 2
        assert tri.with_labels([0, 1, 2]).automorphism_count() == 1

    def test_restrictions_respect_labels(self):
        tri = tri = PATTERNS["3CF"].with_labels([0, 1, 2])
        assert symmetry_restrictions(tri) == ()

    def test_choose2_requires_matching_labels(self):
        dia = PATTERNS["DIA"].with_labels([0, 0, 1, 2])
        plan = build_plan(dia)
        assert plan.collection == "count_last"  # wings differ: no collapse

    def test_choose2_kept_when_labels_match(self):
        dia = PATTERNS["DIA"].with_labels([0, 0, 1, 1])
        assert build_plan(dia).collection == "choose2"


class TestLabeledCounting:
    @pytest.mark.parametrize(
        "name,labels",
        [
            ("3CF", (0, 0, 0)),
            ("3CF", (0, 1, 1)),
            ("DIA", (0, 0, 1, 1)),
            ("DIA", (2, 2, 2, 2)),
            ("TT", (0, 1, 1, 2)),
            ("CYC", (0, 1, 0, 1)),
            ("WEDGE", (1, 0, 0)),
        ],
    )
    def test_all_paths_agree(self, name, labels, labeled_graph):
        pat = PATTERNS[name].with_labels(labels)
        plan = build_plan(pat)
        want = count_unique_embeddings(
            labeled_graph, pat, induced=plan.induced
        )
        assert count_embeddings(labeled_graph, plan).embeddings == want
        hw = XSetAccelerator(xset_default(num_pes=2)).count(
            labeled_graph, pat, plan=plan
        )
        assert hw.embeddings == want

    def test_labels_only_restrict(self, labeled_graph):
        plain = count_embeddings(
            labeled_graph, build_plan(PATTERNS["3CF"])
        ).embeddings
        total_labeled = 0
        for a in range(3):
            for b in range(3):
                for c in range(3):
                    pat = PATTERNS["3CF"].with_labels((a, b, c))
                    n = count_embeddings(
                        labeled_graph, build_plan(pat)
                    ).embeddings
                    total_labeled += n
        # every unlabelled triangle carries exactly one multiset of labels;
        # labelled plans partition by *ordered* label tuple divided by the
        # label-preserving automorphisms, so the sum over all tuples must
        # recover a consistent total
        assert total_labeled >= plain  # orbits split into >= 1 labelled class

    def test_unlabelled_graph_ignores_pattern_labels(self, medium_er):
        pat = PATTERNS["3CF"].with_labels((0, 1, 2))
        plan = build_plan(pat)
        got = count_embeddings(medium_er, plan).embeddings
        # graph has no labels: constraint is vacuous, but |Aut| shrank to 1,
        # so the count equals the *labelled-enumeration* total (6x triangles
        # counted once per ordering / 1)
        plain = count_embeddings(medium_er, build_plan(PATTERNS["3CF"])
                                 ).embeddings
        assert got == 6 * plain

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_property_random_labelled_graphs(self, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi(16, 5.0, seed=seed).with_labels(
            rng.integers(0, 2, 16)
        )
        pat = PATTERNS["DIA"].with_labels((0, 0, 1, 1))
        plan = build_plan(pat)
        assert count_embeddings(g, plan).embeddings == (
            count_unique_embeddings(g, pat)
        )
