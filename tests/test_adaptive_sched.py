"""Adaptive scheduling tests: cost model, auto-selection, dispatch, admission.

Covers the four pillars of the adaptive stack in isolation and then
end-to-end through the service and the cluster coordinator:

- :class:`CostPredictor` tier fallback (profile → throughput → prior),
  conservative priors, and self-reported accuracy;
- ``engine="auto"`` selection, including breaker composition;
- the job queue's cost policy (shortest-predicted-first, FIFO tie-break,
  anti-starvation aging bound) and its predicted-backlog view;
- deadline-aware admission control and its typed rejection.
"""

from __future__ import annotations

import pytest

from repro.core.api import XSetAccelerator
from repro.errors import AdmissionError
from repro.graph.generators import erdos_renyi
from repro.patterns.pattern import PATTERNS
from repro.sched.adaptive import (
    AdmissionPolicy,
    CostPredictor,
    SchedulingConfig,
    analytic_work,
    auto_engine,
    query_features,
    select_engine,
)
from repro.sched.adaptive.predictor import DEFAULT_ENGINE_SPEED
from repro.service import QueryService, pattern_cache_key
from repro.service.job import Job, JobHandle, JobStatus
from repro.service.scheduler import JobQueue

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 6.0, seed=3, name="adaptive-er60")


@pytest.fixture(scope="module")
def features(graph):
    key = pattern_cache_key(PATTERNS["3CF"], None)
    return query_features(graph, "fp-adaptive", key)


class TestCostPredictor:
    def test_unseen_shape_uses_conservative_prior(self, features):
        pred = CostPredictor()
        est = pred.predict(features, "batched")
        assert est.source == "prior" and est.engine == "batched"
        # the margin makes the prior *over*-estimate: at least margin x
        # the raw work/speed projection
        raw = analytic_work(features) / DEFAULT_ENGINE_SPEED["batched"]
        assert est.seconds == pytest.approx(raw * pred.prior_margin)

    def test_prior_respects_engine_ranking(self, features):
        pred = CostPredictor()
        secs = {
            e: pred.predict(features, e).seconds
            for e in ("codegen", "batched", "event")
        }
        assert secs["codegen"] < secs["batched"] < secs["event"]

    def test_observation_promotes_to_profile_tier(self, features):
        pred = CostPredictor()
        pred.observe(features, "batched", 0.25)
        est = pred.predict(features, "batched")
        assert est.source == "profile"
        assert est.seconds == pytest.approx(0.25)

    def test_profile_tier_is_an_ewma(self, features):
        pred = CostPredictor(alpha=0.5)
        pred.observe(features, "batched", 1.0)
        pred.observe(features, "batched", 2.0)
        assert pred.predict(features, "batched").seconds == \
            pytest.approx(1.5)

    def test_other_shape_falls_to_throughput_tier(self, graph, features):
        pred = CostPredictor()
        pred.observe(features, "batched", 0.1)
        other = query_features(
            graph, "fp-adaptive", pattern_cache_key(PATTERNS["TT"], None)
        )
        est = pred.predict(other, "batched")
        assert est.source == "throughput"
        # the learned throughput tier scales with the work proxy
        assert est.seconds > 0.0
        # ...but only for the observed engine; others stay on the prior
        assert pred.predict(other, "event").source == "prior"

    def test_accuracy_window(self, features):
        pred = CostPredictor()
        pred.record_accuracy(predicted=1.0, actual=1.0)
        pred.record_accuracy(predicted=3.0, actual=1.0)
        acc = pred.accuracy()
        assert acc["count"] == 2
        assert acc["within_2x"] == pytest.approx(0.5)

    def test_snapshot_shape(self, features):
        pred = CostPredictor()
        pred.observe(features, "batched", 0.1)
        pred.record_accuracy(0.1, 0.1)
        snap = pred.snapshot()
        assert snap["observations"] == 1
        assert snap["profiled_shapes"] == 1
        assert "batched" in snap["throughput_units_per_s"]
        assert snap["within_2x"] == 1.0

    def test_error_ratio_histogram_is_registered(self, features):
        pred = CostPredictor()
        pred.record_accuracy(2.0, 1.0)
        text = pred.registry.render_prometheus()
        assert "repro_predictor_error_ratio" in text

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            CostPredictor(alpha=0.0)
        with pytest.raises(ValueError, match="prior_margin"):
            CostPredictor(prior_margin=0.5)


class TestEngineSelection:
    def test_untrained_predictor_prefers_codegen(self, features):
        est = select_engine(CostPredictor(), features)
        assert est.engine == "codegen"

    def test_profile_data_overrides_static_preference(self, features):
        pred = CostPredictor()
        pred.observe(features, "event", 1e-6)     # implausibly fast
        pred.observe(features, "codegen", 10.0)   # implausibly slow
        pred.observe(features, "batched", 10.0)
        assert select_engine(pred, features).engine == "event"

    def test_breaker_gate_excludes_engines(self, features):
        est = select_engine(
            CostPredictor(), features, allow=lambda e: e != "codegen"
        )
        assert est.engine == "batched"

    def test_all_breakers_open_still_selects(self, features):
        # advisory-breaker semantics: a fully-tripped board must not
        # leave the service with no engine at all
        est = select_engine(
            CostPredictor(), features, allow=lambda e: False
        )
        assert est.engine == "codegen"

    def test_static_auto_engine(self):
        assert auto_engine() == "codegen"
        assert auto_engine(candidates=("event",)) == "event"
        assert auto_engine(candidates=("event", "batched")) == "batched"
        with pytest.raises(ValueError, match="no execution engines"):
            auto_engine(candidates=())


def _job(seq, predicted=0.0, priority=0, enqueued_at=0.0, deadline=None):
    handle = JobHandle(
        job_id=seq, graph_id="g", pattern_name=f"p{seq}",
        engine="batched", cancel_cb=lambda h: False,
    )
    return Job(
        handle=handle, graph_id="g", fingerprint="fp", plan=None,
        config=None, cache_key=None, priority=priority, seq=seq,
        deadline=deadline, predicted_seconds=predicted,
        enqueued_at=enqueued_at,
    )


class TestCostQueue:
    def test_shortest_predicted_first(self):
        q = JobQueue(policy="cost")
        heavy = _job(1, predicted=5.0)
        light = _job(2, predicted=0.01)
        q.push(heavy)
        q.push(light)
        assert q.pop(now=0.0) is light
        assert q.pop(now=0.0) is heavy

    def test_equal_predictions_degrade_to_fifo(self):
        q = JobQueue(policy="cost")
        first = _job(1, predicted=1.0)
        second = _job(2, predicted=1.0)
        q.push(second)
        q.push(first)
        assert q.pop(now=0.0) is first

    def test_priority_class_dominates_cost(self):
        q = JobQueue(policy="cost")
        cheap_background = _job(1, predicted=0.01, priority=5)
        heavy_interactive = _job(2, predicted=9.0, priority=0)
        q.push(cheap_background)
        q.push(heavy_interactive)
        assert q.pop(now=0.0) is heavy_interactive

    def test_aging_bound_prevents_starvation(self):
        q = JobQueue(policy="cost", age_limit=1.0)
        heavy = _job(1, predicted=100.0, enqueued_at=0.0)
        q.push(heavy)
        fresh = [_job(2 + i, predicted=0.001, enqueued_at=5.0)
                 for i in range(3)]
        for job in fresh:
            q.push(job)
        # past the aging bound the heavy job outranks cheaper newcomers
        assert q.pop(now=5.0) is heavy
        assert q.pop(now=5.0) is fresh[0]

    def test_young_heavy_job_waits(self):
        q = JobQueue(policy="cost", age_limit=10.0)
        heavy = _job(1, predicted=100.0, enqueued_at=0.0)
        light = _job(2, predicted=0.001, enqueued_at=0.5)
        q.push(heavy)
        q.push(light)
        assert q.pop(now=1.0) is light

    def test_starving_job_with_expired_deadline_times_out(self):
        reaped = []
        q = JobQueue(on_timeout=reaped.append, policy="cost", age_limit=1.0)
        doomed = _job(1, predicted=100.0, enqueued_at=0.0, deadline=2.0)
        light = _job(2, predicted=0.001, enqueued_at=5.0)
        q.push(doomed)
        q.push(light)
        assert q.pop(now=5.0) is light
        assert doomed.handle.status is JobStatus.TIMEOUT
        assert reaped == [doomed]

    def test_predicted_backlog_sums_live_jobs(self):
        q = JobQueue(policy="cost")
        q.push(_job(1, predicted=2.0))
        q.push(_job(2, predicted=0.5))
        cancelled = _job(3, predicted=7.0)
        q.push(cancelled)
        cancelled.handle._finish(JobStatus.CANCELLED)
        assert q.predicted_backlog() == pytest.approx(2.5)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown queue policy"):
            JobQueue(policy="sjf")


class TestAdmissionPolicy:
    def test_disabled_policy_admits_everything(self):
        policy = AdmissionPolicy(enabled=False)
        projected = policy.check(
            timeout=0.001, predicted_seconds=100.0,
            backlog_seconds=1000.0, workers=1,
        )
        assert projected > 0.001  # projection computed, rejection skipped

    def test_projection_math(self):
        policy = AdmissionPolicy(enabled=True, safety_factor=2.0)
        projected = policy.projected_completion(
            predicted_seconds=1.0, backlog_seconds=8.0, workers=4,
        )
        assert projected == pytest.approx(8.0 / 4 + 1.0 * 2.0)

    def test_unmeetable_deadline_raises_typed_error(self):
        policy = AdmissionPolicy(enabled=True)
        with pytest.raises(AdmissionError, match="cannot meet"):
            policy.check(
                timeout=0.5, predicted_seconds=10.0,
                backlog_seconds=0.0, workers=1, describe="'TT' on 'g'",
            )

    def test_meetable_deadline_admitted(self):
        policy = AdmissionPolicy(enabled=True)
        assert policy.check(
            timeout=60.0, predicted_seconds=1.0,
            backlog_seconds=2.0, workers=2,
        ) < 60.0

    def test_min_deadline_carve_out(self):
        policy = AdmissionPolicy(enabled=True, min_deadline_seconds=1.0)
        # sub-threshold deadlines are allowed to try even when doomed
        policy.check(
            timeout=0.5, predicted_seconds=10.0,
            backlog_seconds=0.0, workers=1,
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="safety_factor"):
            AdmissionPolicy(safety_factor=0.0)
        with pytest.raises(ValueError, match="min_deadline_seconds"):
            AdmissionPolicy(min_deadline_seconds=-1.0)

    def test_admission_error_is_service_error(self):
        from repro.errors import ServiceError

        assert issubclass(AdmissionError, ServiceError)


class TestSchedulingConfig:
    def test_defaults(self):
        cfg = SchedulingConfig()
        assert cfg.policy == "cost"
        assert cfg.age_limit_seconds == 2.0
        assert not cfg.admission.enabled

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown queue policy"):
            SchedulingConfig(policy="lifo")
        with pytest.raises(ValueError, match="age_limit_seconds"):
            SchedulingConfig(age_limit_seconds=0.0)


class TestServiceAdaptive:
    def test_auto_engine_counts_match_batched(self, graph):
        expected = XSetAccelerator(engine="batched").count(
            graph, PATTERNS["3CF"]
        ).embeddings
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(graph)
            handle = svc.submit(gid, PATTERNS["3CF"], engine="auto")
            report = handle.result(timeout=60)
            # the sentinel never leaks: the handle carries the resolved
            # backend and the count is byte-identical to batched
            assert handle.engine in ("codegen", "batched", "event")
            assert report.embeddings == expected
            stats = svc.stats()
        assert stats.auto_selected.get(handle.engine) == 1
        assert "auto-selected" in stats.summary()

    def test_completed_jobs_train_the_predictor(self, graph):
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(graph)
            svc.count(gid, PATTERNS["3CF"], engine="batched")
            svc.count(gid, PATTERNS["WEDGE"], engine="batched")
            snap = svc.stats().predictor
        assert snap["observations"] == 2
        assert snap["profiled_shapes"] == 2
        assert snap["count"] == 2  # accuracy samples recorded too

    def test_queue_wait_histogram_in_stats(self, graph):
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(graph)
            svc.count(gid, PATTERNS["3CF"], engine="batched")
            stats = svc.stats()
            metrics = svc.metrics.render_prometheus()
        assert stats.queue_wait["count"] == 1
        assert stats.queue_wait["p99"] >= 0.0
        assert "queue wait" in stats.summary()
        assert "repro_job_queue_wait_seconds" in metrics

    def test_admission_rejects_doomed_deadline(self, graph):
        scheduling = SchedulingConfig(
            admission=AdmissionPolicy(enabled=True)
        )
        with QueryService(
            mode="thread", max_workers=1, start_paused=True,
            scheduling=scheduling,
        ) as svc:
            gid = svc.register_graph(graph)
            # build predicted backlog: profile the shape, then queue it
            svc.resume()
            svc.count(gid, PATTERNS["TT"], engine="batched",
                      use_cache=False)
            svc.pause()
            backlog = [
                svc.submit(gid, PATTERNS["TT"], engine="batched",
                           use_cache=False)
                for _ in range(3)
            ]
            with pytest.raises(AdmissionError):
                svc.submit(gid, PATTERNS["WEDGE"], engine="batched",
                           use_cache=False, timeout=1e-7)
            # no deadline → always admitted, regardless of backlog
            ok = svc.submit(gid, PATTERNS["WEDGE"], engine="batched",
                            use_cache=False)
            svc.resume()
            for handle in backlog:
                handle.result(timeout=120)
            ok.result(timeout=120)
            stats = svc.stats()
        assert stats.rejected == 1
        assert "1 admission-rejected" in stats.summary()

    def test_rejection_does_not_consume_queue_space(self, graph):
        scheduling = SchedulingConfig(
            admission=AdmissionPolicy(enabled=True)
        )
        with QueryService(
            mode="thread", max_workers=1, start_paused=True,
            scheduling=scheduling,
        ) as svc:
            gid = svc.register_graph(graph)
            svc.resume()
            svc.count(gid, PATTERNS["TT"], engine="batched",
                      use_cache=False)
            svc.pause()
            svc.submit(gid, PATTERNS["TT"], engine="batched",
                       use_cache=False)
            depth = svc.stats().queue_depth
            with pytest.raises(AdmissionError):
                svc.submit(gid, PATTERNS["TT"], engine="batched",
                           use_cache=False, timeout=1e-7)
            assert svc.stats().queue_depth == depth
            svc.resume()


class TestCoordinatorPredictions:
    def test_scatter_carries_predictions_and_trains(self, graph):
        from repro.cluster import LocalCluster

        expected = XSetAccelerator().count(
            graph, PATTERNS["3CF"]
        ).embeddings
        with LocalCluster(num_shards=2) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(graph)
            report = coord.query(gid, PATTERNS["3CF"], use_cache=False)
            notes = report.notes["cluster"]
            assert report.embeddings == expected
            assert set(notes["predicted_seconds"]) == \
                {"shard0", "shard1"}
            assert all(
                v >= 0.0 for v in notes["predicted_seconds"].values()
            )
            # per-shard elapsed times fed the coordinator's model
            snap = coord.predictor_snapshot()
            assert snap["observations"] == 2
            # a repeat query now predicts from the profile tier
            coord.query(gid, PATTERNS["3CF"], use_cache=False)
            assert coord.predictor_snapshot()["observations"] == 4
