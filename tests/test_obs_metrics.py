"""Metrics registry + shared summary math: counters, histograms, windows.

The percentile edge cases here are the repo-wide contract — service
latency summaries, histogram quantiles and profile span tables all route
through :func:`repro.obs.summary.percentile`.
"""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.summary import (
    DEFAULT_PERCENTILES,
    Window,
    percentile,
    summarize,
)


class TestPercentile:
    def test_empty_window_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 99) == 0.0

    def test_single_sample_is_every_percentile(self):
        for pct in (0, 1, 50, 90, 99, 100):
            assert percentile([7.5], pct) == 7.5

    def test_nearest_rank_semantics(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 50) == 50
        assert percentile(samples, 90) == 90
        assert percentile(samples, 99) == 99
        assert percentile(samples, 100) == 100
        assert percentile(samples, 0) == 1

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 100) == 9.0
        assert percentile([9.0, 1.0, 5.0], 0) == 1.0

    def test_summarize_shape(self):
        out = summarize([1.0, 2.0, 3.0])
        assert set(out) == {"p50", "p90", "p99", "count"}
        assert out["count"] == 3.0
        assert out["p99"] == 3.0
        assert summarize([])["count"] == 0.0


class TestWindow:
    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            Window(0)

    def test_eviction_keeps_most_recent(self):
        win = Window(3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            win.add(v)
        assert win.values() == [3.0, 4.0, 5.0]
        assert len(win) == 3
        assert win.maxlen == 3

    def test_summary_over_evicted_window(self):
        win = Window(2)
        win.add(100.0)  # evicted
        win.add(1.0)
        win.add(2.0)
        assert win.summary()["p99"] == 2.0
        assert win.summary()["count"] == 2.0

    def test_concurrent_adds(self):
        win = Window(10_000)

        def pump():
            for _ in range(1_000):
                win.add(1.0)

        threads = [threading.Thread(target=pump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(win) == 8_000


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("jobs_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("jobs_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0

    def test_concurrent_counter(self):
        c = Counter("n")

        def pump():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000.0


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        counts = h.bucket_counts()
        assert counts[1.0] == 1
        assert counts[2.0] == 2
        assert counts[4.0] == 3
        assert counts[float("inf")] == 4
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)

    def test_quantile_reports_bucket_upper_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(99):
            h.observe(0.5)
        h.observe(3.0)
        assert h.quantile(0.50) == 1.0
        assert h.quantile(0.999) == 4.0
        assert Histogram("empty", buckets=(1.0,)).quantile(0.5) == 0.0

    def test_overflow_quantile_clamps_to_largest_bound(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 1.0

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", "help text")
        b = reg.counter("jobs_total")
        assert a is b
        assert len(reg) == 1

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs", engine="event")
        b = reg.counter("jobs", engine="batched")
        assert a is not b
        a.inc(3)
        snap = reg.snapshot()
        assert snap['jobs{engine="event"}'] == 3.0
        assert snap['jobs{engine="batched"}'] == 0.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs", a="1", b="2")
        b = reg.counter("jobs", b="2", a="1")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")
        with pytest.raises(ValueError):
            reg.histogram("thing")

    def test_snapshot_includes_histogram_samples(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        assert snap['lat_bucket{le="1"}'] == 0.0
        assert snap['lat_bucket{le="2"}'] == 1.0
        assert snap['lat_bucket{le="+Inf"}'] == 1.0
        assert snap["lat_count"] == 1.0
        assert snap["lat_sum"] == 1.5

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "jobs seen", engine="event").inc(2)
        reg.gauge("repro_depth", "queue depth").set(3)
        text = reg.render_prometheus()
        assert "# HELP repro_jobs_total jobs seen" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{engine="event"} 2' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 3" in text
        assert text.endswith("\n")

    def test_prometheus_histogram_le_labels(self):
        reg = MetricsRegistry()
        reg.histogram(
            "lat", "latency", buckets=(0.5,), engine="event"
        ).observe(0.1)
        text = reg.render_prometheus()
        assert 'lat_bucket{engine="event",le="0.5"} 1' in text
        assert 'lat_bucket{engine="event",le="+Inf"} 1' in text
        assert 'lat_count{engine="event"} 1' in text

    def test_percentile_of_passthrough(self):
        reg = MetricsRegistry()
        assert reg.percentile_of([3.0, 1.0], 100) == 3.0
        assert reg.percentile_of([], 50) == 0.0

    def test_default_percentiles_constant(self):
        assert DEFAULT_PERCENTILES == (50, 90, 99)


class TestPrometheusExposition:
    """Text-format edge cases: escaping, empty registries, monotone merges."""

    def test_label_values_escape_specials(self):
        reg = MetricsRegistry()
        reg.counter(
            "c", "help", path='a"b', note="line1\nline2", win="a\\b"
        ).inc()
        text = reg.render_prometheus()
        assert 'path="a\\"b"' in text
        assert 'note="line1\\nline2"' in text
        assert 'win="a\\\\b"' in text
        # the raw specials never appear unescaped inside a label value
        assert 'path="a"b"' not in text

    def test_help_text_escapes_newlines_and_backslashes(self):
        reg = MetricsRegistry()
        reg.counter("c", "first\nsecond \\ third").inc()
        help_lines = [
            line for line in reg.render_prometheus().splitlines()
            if line.startswith("# HELP")
        ]
        assert help_lines == ["# HELP c first\\nsecond \\\\ third"]

    def test_empty_registry_renders_valid_text(self):
        # an exposition with no series is just an empty body
        assert MetricsRegistry().render_prometheus() == ""

    def test_empty_federated_registry_renders_valid_text(self):
        from repro.obs.federation import FederatedMetrics

        text = FederatedMetrics().render()
        assert not [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]

    def test_merged_histogram_buckets_stay_monotone(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", "l", buckets=(0.1, 1.0))
        hist.observe(0.05)
        # merge a remote shard's raw (non-cumulative) slot counts
        hist.add_counts((2, 1, 3), 9.5, 6)
        snap = reg.snapshot()
        series = [
            snap['lat_bucket{le="0.1"}'],
            snap['lat_bucket{le="1"}'],
            snap['lat_bucket{le="+Inf"}'],
        ]
        assert series == sorted(series)  # cumulative ⇒ non-decreasing
        assert series[-1] == snap["lat_count"] == 7.0

    def test_add_counts_rejects_bad_shapes(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", "l", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            hist.add_counts((1, 2), 1.0, 3)  # wrong slot count
        with pytest.raises(ValueError):
            hist.add_counts((1, -1, 0), 1.0, 0)  # negative slot
