"""Service-level observability: the PR's end-to-end acceptance tests.

The headline property: one query submitted through a traced
:class:`QueryService` exports a Chrome trace whose spans nest
service → worker → engine → simulator and include PE activity events —
and the *same* query with observability disabled returns byte-identical
counts with no spans recorded anywhere.
"""

import json
import threading

import pytest

from repro.errors import ServiceError
from repro.graph.generators import erdos_renyi
from repro.obs.export import PE_PID, SPAN_PID
from repro.patterns.pattern import PATTERNS
from repro.service import QueryService
from repro.service.stats import LatencyRecorder, ServiceStats

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(50, 7.0, seed=13, name="obs-er50")


def _span_events(events):
    return [e for e in events if e.get("cat") == "span"]


class TestEndToEnd:
    def test_traced_query_exports_nested_trace(self, graph, tmp_path):
        with QueryService(mode="inline", observability=True) as svc:
            gid = svc.register_graph(graph)
            report = svc.count(gid, PATTERNS["3CF"], engine="event")
            path = tmp_path / "trace.json"
            svc.export_trace(path)
            profiles = svc.profiles()
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        spans = _span_events(events)
        names = {e["name"] for e in spans}
        # every layer shows up in one file
        assert {"service.job", "worker.run_job", "engine.event",
                "sim.accelerator"} <= names
        # the span tree actually nests: each layer fits inside its parent
        by_name = {e["name"]: e for e in spans}
        job = by_name["service.job"]
        for child in ("worker.run_job", "engine.event", "sim.accelerator"):
            ev = by_name[child]
            assert ev["ts"] >= job["ts"] - 1e-3
            assert ev["ts"] + ev["dur"] <= job["ts"] + job["dur"] + 1e-3
        # spans share one lane (one job); PE activity is its own process
        assert all(e["pid"] == SPAN_PID for e in spans)
        pe = [e for e in events if e.get("cat") == "pe"]
        assert pe and all(e["pid"] == PE_PID for e in pe)
        # the attached profile carries the per-level accounting
        assert len(profiles) == 1
        prof = profiles[0]
        assert prof.engine == "event"
        assert prof.levels and all(
            prof.level_tasks[lv] > 0 for lv in prof.levels
        )
        assert report.embeddings > 0

    def test_disabled_is_byte_identical_and_silent(self, graph):
        with QueryService(mode="inline", observability=True) as svc:
            gid = svc.register_graph(graph)
            traced = svc.count(gid, PATTERNS["3CF"], engine="event")
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(graph)
            plain = svc.count(gid, PATTERNS["3CF"], engine="event")
            assert not svc.observability
            assert svc.profiles() == []
            with pytest.raises(ServiceError):
                svc.export_trace()
            with pytest.raises(ServiceError):
                svc.trace_events()
        assert plain.embeddings == traced.embeddings
        assert plain.cycles == traced.cycles
        assert plain.tasks == traced.tasks
        assert plain.profile is None
        assert traced.profile is not None

    def test_batched_engine_levels_match_event_engine(self, graph):
        def levels_for(engine):
            with QueryService(mode="inline", observability=True) as svc:
                gid = svc.register_graph(graph)
                svc.count(gid, PATTERNS["3CF"], engine=engine)
                return svc.profiles()[0].level_tasks

        assert levels_for("batched") == levels_for("event")

    def test_thread_mode_traces_too(self, graph, tmp_path):
        with QueryService(
            mode="thread", max_workers=2, observability=True
        ) as svc:
            gid = svc.register_graph(graph)
            svc.count(gid, PATTERNS["WEDGE"], engine="batched")
            events = svc.export_trace()
        names = {e["name"] for e in _span_events(events)}
        assert {"service.job", "worker.run_job", "engine.batched"} <= names


class TestServiceMetrics:
    def test_counters_and_cache_metrics(self, graph):
        with QueryService(mode="inline", observability=True) as svc:
            gid = svc.register_graph(graph)
            svc.count(gid, PATTERNS["3CF"])
            svc.count(gid, PATTERNS["3CF"])  # served from cache
            stats = svc.stats()
            text = svc.metrics_text()
        assert stats.metrics["repro_jobs_submitted_total"] == 2.0
        assert stats.metrics["repro_jobs_completed_total"] == 1.0
        assert stats.metrics["repro_cache_hits_total"] == 1.0
        assert stats.metrics["repro_cache_misses_total"] == 1.0
        assert "repro_jobs_submitted_total 2" in text
        assert "# TYPE repro_job_latency_seconds histogram" in text

    def test_metrics_exist_without_observability(self, graph):
        # metrics are always-on; only spans/profiles are opt-in
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(graph)
            svc.count(gid, PATTERNS["WEDGE"])
            stats = svc.stats()
        assert stats.metrics["repro_jobs_submitted_total"] == 1.0

    def test_cache_hit_span_is_marked(self, graph):
        with QueryService(mode="inline", observability=True) as svc:
            gid = svc.register_graph(graph)
            svc.count(gid, PATTERNS["3CF"])
            svc.count(gid, PATTERNS["3CF"])
            spans = svc._observation.tracer.finished()
        hits = [
            sp for sp in spans
            if sp.name == "service.job" and sp.attrs.get("cache_hit")
        ]
        assert len(hits) == 1
        assert hits[0].attrs["outcome"] == "done"


class TestLatencyRecorder:
    def test_window_eviction(self):
        rec = LatencyRecorder(window=3)
        for v in (10.0, 1.0, 2.0, 3.0):  # the 10.0 outlier is evicted
            rec.record("event", v)
        summary = rec.summary()["event"]
        assert summary["count"] == 3.0
        assert summary["p99"] == 3.0

    def test_engines_are_independent(self):
        rec = LatencyRecorder()
        rec.record("event", 1.0)
        rec.record("batched", 2.0)
        summary = rec.summary()
        assert summary["event"]["p50"] == 1.0
        assert summary["batched"]["p50"] == 2.0

    def test_feeds_registry_histogram(self):
        rec = LatencyRecorder()
        rec.record("event", 0.1)
        snap = rec.registry.snapshot()
        assert snap['repro_job_latency_seconds_count{engine="event"}'] == 1.0

    def test_concurrent_records(self):
        rec = LatencyRecorder(window=128)

        def pump(engine):
            for _ in range(500):
                rec.record(engine, 0.001)

        threads = [
            threading.Thread(target=pump, args=(e,))
            for e in ("event", "batched") for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        summary = rec.summary()
        assert summary["event"]["count"] == 128.0  # window-bounded
        assert summary["batched"]["count"] == 128.0


class TestSnapshotImmutability:
    def test_stats_snapshot_is_frozen(self, graph):
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(graph)
            svc.count(gid, PATTERNS["WEDGE"])
            stats = svc.stats()
        with pytest.raises(AttributeError):
            stats.submitted = 99

    def test_snapshot_stable_under_concurrent_record(self):
        """A taken snapshot must not change while recording continues."""
        rec = LatencyRecorder(window=64)
        rec.record("event", 1.0)
        stats = ServiceStats(
            mode="inline", workers=1, graphs=1, queue_depth=0, in_flight=0,
            submitted=1, completed=1, failed=0, cancelled=0, timed_out=0,
            retries=0, cache_size=0, cache_hits=0, cache_misses=1,
            cache_evictions=0, cache_invalidations=0, cache_hit_rate=0.0,
            latency=rec.summary(),
        )
        before = json.dumps(stats.latency, sort_keys=True)
        stop = threading.Event()

        def pump():
            while not stop.is_set():
                rec.record("event", 2.0)

        t = threading.Thread(target=pump)
        t.start()
        try:
            for _ in range(50):
                assert json.dumps(stats.latency, sort_keys=True) == before
        finally:
            stop.set()
            t.join()
        # new snapshots do see the new samples
        assert rec.summary()["event"]["count"] > 1.0
