"""NetworkX interop tests (cross-validated against networkx itself)."""

import numpy as np
import pytest

nx = pytest.importorskip("networkx")

from repro.errors import GraphFormatError
from repro.graph import erdos_renyi
from repro.graph.interop import from_networkx, to_networkx
from repro.patterns import PATTERNS, build_plan, count_embeddings


class TestFromNetworkx:
    def test_roundtrip_structure(self):
        g_nx = nx.karate_club_graph()
        g, mapping = from_networkx(g_nx)
        assert g.num_vertices == g_nx.number_of_nodes()
        assert g.num_edges == g_nx.number_of_edges()
        assert len(mapping) == g.num_vertices

    def test_triangle_count_matches_networkx(self):
        g_nx = nx.karate_club_graph()
        g, _ = from_networkx(g_nx)
        ours = count_embeddings(g, build_plan(PATTERNS["3CF"])).embeddings
        theirs = sum(nx.triangles(g_nx).values()) // 3
        assert ours == theirs

    def test_arbitrary_node_ids(self):
        g_nx = nx.Graph()
        g_nx.add_edges_from([("alice", "bob"), ("bob", ("tuple", 1))])
        g, mapping = from_networkx(g_nx)
        assert g.num_vertices == 3
        assert g.has_edge(mapping["alice"], mapping["bob"])

    def test_label_attribute_interned(self):
        g_nx = nx.Graph()
        g_nx.add_edges_from([(0, 1), (1, 2)])
        for node, kind in ((0, "user"), (1, "item"), (2, "user")):
            g_nx.nodes[node]["kind"] = kind
        g, mapping = from_networkx(g_nx, label_attr="kind")
        assert g.labels is not None
        assert g.labels[mapping[0]] == g.labels[mapping[2]]
        assert g.labels[mapping[0]] != g.labels[mapping[1]]

    def test_directed_rejected(self):
        with pytest.raises(GraphFormatError):
            from_networkx(nx.DiGraph([(0, 1)]))


class TestToNetworkx:
    def test_roundtrip(self, small_er):
        g_nx = to_networkx(small_er)
        back, mapping = from_networkx(g_nx)
        assert back.num_edges == small_er.num_edges

    def test_labels_exported(self):
        g = erdos_renyi(10, 3.0, seed=1).with_labels(np.arange(10) % 2)
        g_nx = to_networkx(g)
        assert g_nx.nodes[0]["label"] in (0, 1)

    def test_isomorphic(self, small_er):
        g_nx = to_networkx(small_er)
        assert g_nx.number_of_nodes() == small_er.num_vertices
        assert g_nx.number_of_edges() == small_er.num_edges


class TestAgainstNetworkxOracles:
    """Independent oracle checks using networkx's own algorithms."""

    def test_clustering_matches(self, small_er):
        from repro.graph import global_clustering

        ours = global_clustering(small_er)
        theirs = nx.transitivity(to_networkx(small_er))
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_core_numbers_match(self, small_er):
        from repro.graph import core_numbers

        ours = core_numbers(small_er)
        theirs = nx.core_number(to_networkx(small_er))
        assert all(ours[v] == theirs[v] for v in theirs)

    def test_components_match(self):
        from repro.graph import connected_components

        g = erdos_renyi(60, 1.5, seed=5)
        comp = connected_components(g)
        ours = len(set(comp.tolist()))
        theirs = nx.number_connected_components(to_networkx(g))
        assert ours == theirs

    @pytest.mark.parametrize("name", ["4CF", "DIA"])
    def test_subgraph_counts_vs_networkx_isomorphism(self, name):
        from repro.patterns import count_unique_embeddings

        g = erdos_renyi(22, 6.0, seed=9)
        pat = PATTERNS[name]
        plan = build_plan(pat)
        ours = count_embeddings(g, plan).embeddings
        pattern_nx = nx.Graph(list(pat.edge_list))
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            to_networkx(g), pattern_nx
        )
        theirs = (
            sum(1 for _ in matcher.subgraph_monomorphisms_iter())
            // pat.automorphism_count()
        )
        assert ours == theirs
