"""The ``codegen`` engine: compiled-kernel execution end to end.

Source-level specialisation is covered in ``test_patterns_codegen.py``;
this file pins down the *engine* contract — equivalence with the other
backends on labelled/enumerate/chunked workloads, report parity with
``batched``, service dispatch, breaker fallback routing
(codegen→batched) and the fault-injection site.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SystemConfig, XSetAccelerator, xset_default
from repro.engine import get_engine
from repro.engine.codegen import CodegenEngine
from repro.graph import erdos_renyi
from repro.patterns import PATTERNS, build_plan
from repro.patterns.executor import count_embeddings
from repro.resilience import (
    FAULT_SITES,
    DEFAULT_FALLBACKS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
)
from repro.service import QueryService


def run_codegen(graph, plan, **cfg):
    config = xset_default(engine="codegen", **cfg)
    return get_engine("codegen").run(graph, plan, config)


@pytest.fixture
def labeled_graph():
    g = erdos_renyi(140, 9.0, seed=21, name="cg-labeled")
    g.labels = np.arange(g.num_vertices, dtype=np.int64) % 4
    return g


class TestEquivalenceExtras:
    def test_labeled_graph_matches_batched(self, labeled_graph):
        cfg_b = xset_default(engine="batched")
        for name in sorted(PATTERNS):
            plan = build_plan(PATTERNS[name])
            ba = get_engine("batched").run(labeled_graph, plan, cfg_b)
            cg = run_codegen(labeled_graph, plan)
            assert cg.embeddings == ba.embeddings, name
            assert cg.cycles == ba.cycles, name

    def test_enumerate_collection(self, medium_er):
        plan = build_plan(PATTERNS["DIA"], collection="enumerate")
        want = count_embeddings(medium_er, plan).embeddings
        assert run_codegen(medium_er, plan).embeddings == want

    def test_explicit_roots_subset(self, medium_er):
        plan = build_plan(PATTERNS["3CF"])
        roots = np.arange(0, medium_er.num_vertices, 2)
        cfg = xset_default(engine="codegen")
        got = get_engine("codegen").run(medium_er, plan, cfg, roots=roots)
        want = get_engine("batched").run(
            medium_er, plan, xset_default(engine="batched"), roots=roots
        )
        assert got.embeddings == want.embeddings

    def test_root_chunking_preserves_counts(self, skewed_graph):
        plan = build_plan(PATTERNS["TT"])
        want = count_embeddings(skewed_graph, plan).embeddings
        engine = CodegenEngine(root_chunk=13)  # force many partial chunks
        cfg = xset_default(engine="codegen")
        assert engine.run(skewed_graph, plan, cfg).embeddings == want

    def test_bitmap_width_configs_agree(self, medium_er):
        plan = build_plan(PATTERNS["3CF"])
        counts = {
            w: run_codegen(medium_er, plan, bitmap_width=w).embeddings
            for w in (0, 32, 64)
        }
        assert len(set(counts.values())) == 1


class TestReportParity:
    def test_full_report_fields_match_batched(self, medium_er):
        plan = build_plan(PATTERNS["HOUSE"])
        ba = get_engine("batched").run(
            medium_er, plan, xset_default(engine="batched")
        )
        cg = run_codegen(medium_er, plan)
        for field in ("embeddings", "cycles", "tasks", "set_ops",
                      "comparisons", "words_in", "words_out", "dram_bytes"):
            assert getattr(cg, field) == getattr(ba, field), field

    def test_wall_seconds_populated(self, medium_er):
        plan = build_plan(PATTERNS["3CF"])
        assert run_codegen(medium_er, plan).wall_seconds >= 0


class TestApiSurface:
    def test_accelerator_engine_kwarg(self, medium_er):
        accel = XSetAccelerator(engine="codegen")
        want = count_embeddings(
            medium_er, build_plan(PATTERNS["3CF"])
        ).embeddings
        assert accel.count(medium_er, PATTERNS["3CF"]).embeddings == want

    def test_config_accepts_codegen(self):
        assert SystemConfig(engine="codegen").engine == "codegen"

    def test_cli_engine_choice(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["count", "--engine", "codegen"])
        assert args.engine == "codegen"

    def test_service_dispatch(self, medium_er):
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(medium_er, "g")
            report = svc.count(gid, PATTERNS["TT"], engine="codegen")
        want = count_embeddings(
            medium_er, build_plan(PATTERNS["TT"])
        ).embeddings
        assert report.embeddings == want


class TestResilienceRouting:
    def test_default_fallback_chain(self):
        assert ("codegen", "batched") in DEFAULT_FALLBACKS
        assert ("batched", "event") in DEFAULT_FALLBACKS
        cfg = ResilienceConfig.hardened()
        assert cfg.fallback_for("codegen") == "batched"
        assert cfg.fallback_for("batched") == "event"

    def test_fault_site_registered(self):
        assert "engine.codegen" in FAULT_SITES

    def test_open_breaker_reroutes_codegen_to_batched(self, small_er):
        svc = QueryService(
            mode="inline",
            resilience=ResilienceConfig(fallbacks=DEFAULT_FALLBACKS),
        )
        gid = svc.register_graph(small_er, "g")
        board = svc._breakers
        for _ in range(svc.resilience.failure_threshold):
            board.for_engine("codegen").record_failure()
        handle = svc.submit(gid, PATTERNS["3CF"], engine="codegen",
                            use_cache=False)
        report = handle.result(timeout=60)
        want = count_embeddings(
            small_er, build_plan(PATTERNS["3CF"])
        ).embeddings
        assert report.embeddings == want
        assert handle.engine == "batched"
        assert svc.stats().rerouted == 1

    def test_injected_crash_site_fires(self, small_er):
        svc = QueryService(
            mode="inline",
            resilience=ResilienceConfig(fallbacks=DEFAULT_FALLBACKS),
        )
        gid = svc.register_graph(small_er, "g")
        svc.arm_faults(FaultPlan(seed=1, specs=(
            FaultSpec(site="engine.codegen", kind=FaultKind.CRASH,
                      rate=1.0, max_fires=1),
        )))
        handle = svc.submit(gid, PATTERNS["3CF"], engine="codegen",
                            use_cache=False)
        report = handle.result(timeout=60)
        want = count_embeddings(
            small_er, build_plan(PATTERNS["3CF"])
        ).embeddings
        # the retry (or the batched fallback) recovers the exact count
        assert report.embeddings == want

    def test_sampled_crosscheck_verifies_against_batched(self, small_er):
        svc = QueryService(
            mode="inline",
            resilience=ResilienceConfig.hardened(verify_fraction=1.0),
        )
        gid = svc.register_graph(small_er, "g")
        handle = svc.submit(gid, PATTERNS["3CF"], engine="codegen",
                            use_cache=False)
        report = handle.result(timeout=60)
        check = report.notes.get("crosscheck")
        assert check is not None
        assert check["verify_engine"] == "batched"
        assert not check["mismatch"]
