"""Element/trace records and pipeline bookkeeping details."""

import numpy as np
import pytest

from repro.setops import (
    FLAG_L,
    FLAG_R,
    Element,
    MergeQueuePipeline,
    OrderAwarePipeline,
    SystolicMergeArray,
)
from repro.setops.trace import INF_KEY, SetOpTrace


class TestElement:
    def test_validity(self):
        assert Element(key=5).valid
        assert not Element(key=INF_KEY).valid

    def test_order_key_ties_l_first(self):
        left = Element(key=3, flag=FLAG_L)
        right = Element(key=3, flag=FLAG_R)
        assert left.order_key() < right.order_key()

    def test_default_bitmap_is_presence(self):
        assert Element(key=1).bitmap == 1


class TestTraceBookkeeping:
    def test_words_consumed(self):
        a = np.array([1, 2, 3])
        b = np.array([2, 4])
        t = OrderAwarePipeline(4).run(a, b, "intersect")
        assert t.words_consumed == 5

    def test_words_produced(self):
        a = np.array([1, 2, 3])
        b = np.array([2, 3, 9])
        t = OrderAwarePipeline(4).run(a, b, "intersect")
        assert t.words_produced == 2
        assert t.result_count == 2

    def test_cycles_is_issue_plus_depth(self):
        a = np.arange(32)
        b = np.arange(16, 48)
        for pipe in (OrderAwarePipeline(8), MergeQueuePipeline(),
                     SystolicMergeArray(8)):
            t = pipe.run(a, b, "intersect")
            assert t.cycles == t.issue_cycles + t.pipeline_depth

    def test_comparisons_nonzero_when_work(self):
        a = np.arange(20)
        b = np.arange(10, 30)
        for pipe in (OrderAwarePipeline(4), MergeQueuePipeline(),
                     SystolicMergeArray(4)):
            assert pipe.run(a, b, "intersect").comparisons > 0

    def test_default_trace_empty(self):
        t = SetOpTrace()
        assert t.cycles == 0
        assert t.result.size == 0


class TestBoundaryEdgeCases:
    """Regression cases for the early-termination boundary register."""

    def test_pending_matches_unconsumed_head_difference(self):
        # A's last element equals a deep B element that is never consumed
        a = np.array([8])
        b = np.array([1, 2, 3, 8])
        t = OrderAwarePipeline(4).run(a, b, "difference")
        assert t.result.size == 0  # 8 ∈ B, must not appear in A−B

    def test_pending_matches_unconsumed_head_intersect(self):
        a = np.array([8])
        b = np.array([1, 2, 3, 8])
        t = OrderAwarePipeline(4).run(a, b, "intersect")
        assert t.result.tolist() == [8]

    def test_identical_singletons(self):
        a = np.array([7])
        for op, want in (("intersect", [7]), ("difference", [])):
            t = OrderAwarePipeline(8).run(a, a.copy(), op)
            assert t.result.tolist() == want

    def test_interleaved_no_overlap(self):
        a = np.arange(0, 40, 2)
        b = np.arange(1, 41, 2)
        t = OrderAwarePipeline(8).run(a, b, "intersect")
        assert t.result.size == 0
        t2 = OrderAwarePipeline(8).run(a, b, "difference")
        assert np.array_equal(t2.result, a)

    def test_a_strictly_before_b(self):
        a = np.arange(10)
        b = np.arange(100, 110)
        # intersection terminates quickly: only A's range is consumed
        t = OrderAwarePipeline(8).run(a, b, "intersect")
        assert t.result.size == 0
        assert t.issue_cycles <= 3
