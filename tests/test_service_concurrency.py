"""Concurrency edge cases, deterministically (no sleeps, no races).

Every timing decision in the service flows through an injectable clock
and sleep function, and the executor itself is injectable, so worker
crashes, deadlines, backpressure and cache invalidation are all driven
from a single thread here:

* worker-crash retry: a flaky executor fails the first N submissions with
  a crash-shaped error; the service retries with recorded backoffs.
* deadline: a paused service plus a hand-advanced clock expires queued
  jobs without ever running them.
* backpressure: a paused service with a tiny queue raises QueueFullError.
* invalidation: edge updates through ``dynamic_session`` purge (and
  delta-patch) cached results.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.core.api import XSetAccelerator
from repro.errors import (
    JobCancelledError,
    JobTimeoutError,
    QueueFullError,
    WorkerCrashError,
)
from repro.patterns.pattern import PATTERNS
from repro.service import (
    InlineExecutor,
    Job,
    JobHandle,
    JobQueue,
    JobStatus,
    QueryService,
)


class FakeClock:
    """Hand-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class RecordingSleep:
    def __init__(self) -> None:
        self.calls: list[float] = []

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)


class FlakyExecutor(InlineExecutor):
    """Fails the first ``failures`` submissions like a dying worker."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.submissions = 0

    def submit(self, fn, /, *args, **kwargs):
        self.submissions += 1
        if self.submissions <= self.failures:
            raise BrokenExecutor(
                f"worker died (injected failure #{self.submissions})"
            )
        return super().submit(fn, *args, **kwargs)


@pytest.fixture
def graph(small_er):
    return small_er


def make_service(graph, **kwargs):
    kwargs.setdefault("mode", "inline")
    svc = QueryService(**kwargs)
    gid = svc.register_graph(graph, graph_id="g")
    return svc, gid


class TestWorkerCrashRetry:
    def test_retries_until_success(self, graph):
        sleep = RecordingSleep()
        executor = FlakyExecutor(failures=2)
        svc, gid = make_service(graph, executor=executor, sleep=sleep)
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        report = handle.result(timeout=60)
        assert report.embeddings == \
            XSetAccelerator(engine="batched").count(
                graph, PATTERNS["3CF"]).embeddings
        assert handle.attempts == 3
        assert svc.stats().retries == 2
        # exponential backoff: second retry waits twice the first
        assert len(sleep.calls) == 2
        assert sleep.calls[1] == pytest.approx(2 * sleep.calls[0])

    def test_retries_exhausted_fails_typed(self, graph):
        sleep = RecordingSleep()
        executor = FlakyExecutor(failures=100)
        svc, gid = make_service(graph, executor=executor, sleep=sleep)
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        assert handle.status is JobStatus.FAILED
        with pytest.raises(WorkerCrashError, match="retries exhausted"):
            handle.result()
        stats = svc.stats()
        assert stats.failed == 1
        assert stats.retries == svc.retry.max_retries

    def test_pool_mode_backoff_never_sleeps_in_callback(self, graph):
        # pool modes run _on_done on the executor's completion thread;
        # sleeping there would stall every other in-flight completion, so
        # the backoff must be deferred through the queue instead
        sleep = RecordingSleep()
        executor = FlakyExecutor(failures=2)
        svc, gid = make_service(
            graph, mode="thread", executor=executor, sleep=sleep
        )
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        report = handle.result(timeout=60)
        assert report.embeddings == \
            XSetAccelerator(engine="batched").count(
                graph, PATTERNS["3CF"]).embeddings
        assert handle.attempts == 3
        assert svc.stats().retries == 2
        assert sleep.calls == []  # backoff waited out in the queue
        svc.shutdown()

    def test_queue_defers_job_until_not_before(self, graph):
        handle = JobHandle(
            job_id=1, graph_id="g", pattern_name="3CF",
            engine="batched", cancel_cb=lambda h: False,
        )
        job = Job(
            handle=handle, graph_id="g", fingerprint="fp", plan=None,
            config=None, cache_key=None, not_before=5.0,
        )
        queue = JobQueue(limit=4)
        queue.push(job)
        assert queue.pop(0.0) is None  # backoff pending: deferred ...
        assert queue.depth() == 1      # ... but still queued, not dropped
        assert queue.pop(10.0) is job  # runnable once the backoff elapsed
        assert queue.depth() == 0

    def test_shutdown_releases_job_parked_on_backoff(self, graph):
        handle = JobHandle(
            job_id=1, graph_id="g", pattern_name="3CF",
            engine="batched", cancel_cb=lambda h: False,
        )
        job = Job(
            handle=handle, graph_id="g", fingerprint="fp", plan=None,
            config=None, cache_key=None, not_before=1e9,
        )
        queue = JobQueue(limit=4)
        queue.push(job)
        drained = queue.drain()  # the shutdown path: ignores not_before
        assert drained == [job]
        assert queue.depth() == 0

    def test_deterministic_engine_error_not_retried(self, graph):
        calls = []

        class FailingExecutor(InlineExecutor):
            def submit(self, fn, /, *args, **kwargs):
                calls.append(1)
                from concurrent.futures import Future

                future = Future()
                future.set_exception(ValueError("engine bug"))
                return future

        sleep = RecordingSleep()
        svc, gid = make_service(
            graph, executor=FailingExecutor(), sleep=sleep
        )
        handle = svc.submit(gid, PATTERNS["3CF"])
        assert handle.status is JobStatus.FAILED
        with pytest.raises(ValueError, match="engine bug"):
            handle.result()
        assert len(calls) == 1  # no retry for non-crash failures
        assert sleep.calls == []


class TestDeadlines:
    def test_queued_job_expires_without_running(self, graph):
        clock = FakeClock()
        executor = InlineExecutor()
        svc, gid = make_service(
            graph, executor=executor, clock=clock, start_paused=True
        )
        handle = svc.submit(gid, PATTERNS["3CF"], timeout=5.0)
        assert handle.status is JobStatus.PENDING
        clock.advance(10.0)
        svc.resume()
        assert handle.status is JobStatus.TIMEOUT
        with pytest.raises(JobTimeoutError, match="deadline expired"):
            handle.result()
        assert svc.stats().timed_out == 1

    def test_job_within_deadline_runs(self, graph):
        clock = FakeClock()
        svc, gid = make_service(graph, clock=clock, start_paused=True)
        handle = svc.submit(
            gid, PATTERNS["3CF"], engine="batched", timeout=5.0
        )
        clock.advance(1.0)
        svc.resume()
        assert handle.result().embeddings >= 0

    def test_result_wait_timeout_is_independent(self, graph):
        svc, gid = make_service(graph, start_paused=True)
        handle = svc.submit(gid, PATTERNS["3CF"])
        with pytest.raises(JobTimeoutError, match="not finished within"):
            handle.result(timeout=0.01)
        svc.shutdown()


class TestBackpressure:
    def test_queue_full_raises_typed_error(self, graph):
        svc, gid = make_service(graph, queue_limit=2, start_paused=True)
        svc.submit(gid, PATTERNS["3CF"])
        svc.submit(gid, PATTERNS["WEDGE"])
        with pytest.raises(QueueFullError, match="full"):
            svc.submit(gid, PATTERNS["P3"])
        assert svc.stats().queue_depth == 2
        svc.shutdown()

    def test_cancellation_frees_queue_space(self, graph):
        svc, gid = make_service(graph, queue_limit=2, start_paused=True)
        first = svc.submit(gid, PATTERNS["3CF"])
        svc.submit(gid, PATTERNS["WEDGE"])
        assert first.cancel()
        svc.submit(gid, PATTERNS["P3"])  # fits: the cancelled slot freed
        svc.shutdown()


class TestCancellation:
    def test_cancel_queued_job(self, graph):
        svc, gid = make_service(graph, start_paused=True)
        handle = svc.submit(gid, PATTERNS["3CF"])
        assert handle.cancel() is True
        assert handle.status is JobStatus.CANCELLED
        with pytest.raises(JobCancelledError):
            handle.result()
        assert svc.stats().cancelled == 1
        svc.resume()  # must not dispatch the tombstoned job
        assert svc.stats().completed == 0
        svc.shutdown()

    def test_cancel_is_atomic_against_running_transition(self, graph):
        # a job that reached RUNNING between cancel()'s check and its
        # transition must NOT be marked cancelled under a live worker
        svc, gid = make_service(graph, start_paused=True)
        handle = svc.submit(gid, PATTERNS["3CF"])
        handle._set_running()  # simulate the dispatcher winning the race
        assert handle.cancel() is False
        assert handle.status is JobStatus.RUNNING
        assert svc.stats().cancelled == 0
        handle._finish(JobStatus.FAILED, error=RuntimeError("unwind"))
        svc.shutdown()

    def test_executor_cancelled_future_releases_waiters(self, graph):
        # a future the executor cancels must still finish the handle —
        # otherwise result() blocks forever on a job that will never run
        class CancellingExecutor(InlineExecutor):
            def submit(self, fn, /, *args, **kwargs):
                future = Future()
                future.cancel()
                return future

        svc, gid = make_service(graph, executor=CancellingExecutor())
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        assert handle.status is JobStatus.CANCELLED
        with pytest.raises(JobCancelledError):
            handle.result(timeout=5)
        assert svc.stats().cancelled == 1
        svc.shutdown()

    def test_cancel_finished_job_is_noop(self, graph):
        svc, gid = make_service(graph)
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        handle.result()
        assert handle.cancel() is False
        svc.shutdown()

    def test_shutdown_cancels_queued_jobs(self, graph):
        svc, gid = make_service(graph, start_paused=True)
        handle = svc.submit(gid, PATTERNS["3CF"])
        svc.shutdown()
        assert handle.status is JobStatus.CANCELLED
        with pytest.raises(JobCancelledError):
            handle.result()


class TestCacheInvalidation:
    def test_dynamic_update_invalidates(self, graph):
        svc, gid = make_service(graph)
        before = svc.count(gid, PATTERNS["3CF"], engine="batched")
        session = svc.dynamic_session(
            gid, PATTERNS["3CF"], delta_patch=False
        )
        u, v = next(
            (u, v)
            for u in range(graph.num_vertices)
            for v in range(u + 1, graph.num_vertices)
            if not graph.has_edge(u, v)
        )
        delta = session.insert_edge(u, v)
        assert svc.stats().cache_invalidations >= 1
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        after = handle.result()
        assert not handle.from_cache
        assert after.embeddings == before.embeddings + delta
        # cross-check against a fresh count on the updated snapshot
        fresh = XSetAccelerator(engine="batched").count(
            session.snapshot(), PATTERNS["3CF"]
        )
        assert after.embeddings == fresh.embeddings
        svc.shutdown()

    def test_dynamic_update_delta_patches(self, graph):
        svc, gid = make_service(graph)
        before = svc.count(gid, PATTERNS["3CF"], engine="batched")
        session = svc.dynamic_session(gid, PATTERNS["3CF"])
        u, v = next(
            (u, v)
            for u in range(graph.num_vertices)
            for v in range(u + 1, graph.num_vertices)
            if not graph.has_edge(u, v)
        )
        delta = session.insert_edge(u, v)
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        patched = handle.result()
        assert handle.from_cache  # served without re-running the engine
        assert patched.embeddings == before.embeddings + delta
        # removal patches back down
        session.remove_edge(u, v)
        handle2 = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        assert handle2.result().embeddings == before.embeddings
        assert handle2.from_cache
        svc.shutdown()

    def test_update_graph_invalidates(self, graph, medium_er):
        svc, gid = make_service(graph)
        svc.count(gid, PATTERNS["3CF"], engine="batched")
        dropped = svc.update_graph(gid, medium_er)
        assert dropped == 1
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        report = handle.result()
        assert not handle.from_cache
        assert report.embeddings == XSetAccelerator(engine="batched").count(
            medium_er, PATTERNS["3CF"]
        ).embeddings
        svc.shutdown()

    def test_explicit_invalidate(self, graph):
        svc, gid = make_service(graph)
        svc.count(gid, PATTERNS["3CF"], engine="batched")
        assert svc.invalidate_graph(gid) == 1
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched")
        handle.result()
        assert not handle.from_cache
        svc.shutdown()
