"""CLI tests (in-process, via the argparse entry point)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_defaults(self):
        args = build_parser().parse_args(["count"])
        assert args.dataset == "WV"
        assert args.system == "xset"

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--system", "tpu"])


class TestCommands:
    def test_count(self, capsys):
        rc = main(
            ["count", "--dataset", "PP", "--pattern", "3CF",
             "--scale", "0.05"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "embeddings" in out and "3CF" in out

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--dataset", "PP", "--pattern", "3CF",
             "--scale", "0.05"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "flexminer" in out and "xset" in out

    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        for key in ("PP", "WV", "LJ"):
            assert key in out

    def test_config(self, capsys):
        assert main(["config"]) == 0
        assert "barrier-free" in capsys.readouterr().out

    def test_config_baseline(self, capsys):
        assert main(["config", "--system", "fingers"]) == 0
        assert "pseudo-dfs" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        assert "mm^2" in capsys.readouterr().out

    def test_plan(self, capsys):
        assert main(["plan", "--pattern", "DIA"]) == 0
        out = capsys.readouterr().out
        assert "choose2" in out

    def test_count_with_overrides(self, capsys):
        rc = main(
            ["count", "--dataset", "PP", "--pattern", "3CF",
             "--scale", "0.05", "--pes", "2", "--sius", "2"]
        )
        assert rc == 0

    def test_results_command(self, capsys):
        assert main(["results"]) == 0
        out = capsys.readouterr().out
        assert "===" in out or "no results found" in out
