"""CLI tests (in-process, via the argparse entry point)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_defaults(self):
        args = build_parser().parse_args(["count"])
        assert args.dataset == "WV"
        assert args.system == "xset"

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--system", "tpu"])


class TestCommands:
    def test_count(self, capsys):
        rc = main(
            ["count", "--dataset", "PP", "--pattern", "3CF",
             "--scale", "0.05"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "embeddings" in out and "3CF" in out

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--dataset", "PP", "--pattern", "3CF",
             "--scale", "0.05"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "flexminer" in out and "xset" in out

    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        for key in ("PP", "WV", "LJ"):
            assert key in out

    def test_config(self, capsys):
        assert main(["config"]) == 0
        assert "barrier-free" in capsys.readouterr().out

    def test_config_baseline(self, capsys):
        assert main(["config", "--system", "fingers"]) == 0
        assert "pseudo-dfs" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        assert "mm^2" in capsys.readouterr().out

    def test_plan(self, capsys):
        assert main(["plan", "--pattern", "DIA"]) == 0
        out = capsys.readouterr().out
        assert "choose2" in out

    def test_count_with_overrides(self, capsys):
        rc = main(
            ["count", "--dataset", "PP", "--pattern", "3CF",
             "--scale", "0.05", "--pes", "2", "--sius", "2"]
        )
        assert rc == 0

    def test_results_command(self, capsys):
        assert main(["results"]) == 0
        out = capsys.readouterr().out
        assert "===" in out or "no results found" in out


class TestEnginesCommand:
    def test_lists_all_backends(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "event" in out and "batched" in out
        assert "*" in out  # the default engine is marked

    def test_descriptions_present(self, capsys):
        main(["engines"])
        out = capsys.readouterr().out
        assert "event-driven" in out
        assert "frontier expansion" in out


class TestServeCommand:
    def test_inline_round_trip(self, capsys):
        rc = main(
            ["serve", "--mode", "inline", "--nodes", "24", "--degree", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "embeddings" in out
        assert "[cache]" in out       # the second wave hits the cache
        assert "hit rate" in out      # stats summary printed

    def test_thread_mode(self, capsys):
        rc = main(
            ["serve", "--mode", "thread", "--workers", "2",
             "--nodes", "20", "--degree", "4"]
        )
        assert rc == 0
        assert "mode=thread" in capsys.readouterr().out

    def test_engine_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--engine", "warp"])


class TestStatsCommand:
    def test_profile_and_summary_printed(self, capsys):
        rc = main(
            ["stats", "--dataset", "PP", "--pattern", "3CF",
             "--scale", "0.05"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-level work" in out
        assert "span durations" in out
        assert "1 submitted" in out

    def test_prometheus_dump(self, capsys):
        rc = main(
            ["stats", "--dataset", "PP", "--pattern", "WEDGE",
             "--scale", "0.05", "--engine", "batched", "--prometheus"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_jobs_submitted_total counter" in out


class TestTraceCommand:
    def test_export_writes_perfetto_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        rc = main(
            ["trace", "--dataset", "PP", "--pattern", "3CF",
             "--scale", "0.05", "--export", str(path)]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        data = json.loads(path.read_text())
        cats = {e.get("cat") for e in data["traceEvents"]}
        assert "span" in cats and "pe" in cats

    def test_stdout_json_when_no_export(self, capsys):
        import json

        rc = main(
            ["trace", "--dataset", "PP", "--pattern", "WEDGE",
             "--scale", "0.05", "--engine", "batched"]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert any(
            e.get("name") == "service.job" for e in data["traceEvents"]
        )

    def test_verbose_flag_parses(self):
        args = build_parser().parse_args(["-vv", "engines"])
        assert args.verbose == 2


class TestCluster:
    def test_clean_run_matches_single_node(self, capsys):
        rc = main(["cluster", "--shards", "3", "--nodes", "80"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sharded 3 ways" in out
        assert "matches single-node" in out
        assert "PARTIAL" not in out
        assert "cluster health: healthy" in out

    def test_chaos_kill_degrades(self, capsys):
        rc = main(
            ["cluster", "--shards", "3", "--nodes", "80", "--kill", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "killed shard1" in out
        assert "PARTIAL" in out
        assert "cluster health: degraded" in out
        assert "UNREACHABLE" in out

    def test_transport_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--transport", "smoke"])


class TestJsonFlags:
    def test_stats_json(self, capsys):
        import json

        rc = main(
            ["stats", "--json", "--dataset", "PP", "--scale", "0.05"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "inline"
        assert payload["completed"] == 1
        assert "latency" in payload

    def test_health_json(self, capsys):
        import json

        rc = main(["health", "--json", "--nodes", "30"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "healthy"
        # the flight-recorder counts ride along
        assert payload["flight"]["submit"] == 5
        assert payload["flight"]["done"] == 5


class TestTopCommand:
    def test_bounded_dashboard(self, capsys):
        rc = main(
            ["top", "--shards", "2", "--nodes", "40",
             "--iterations", "2", "--interval", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tick 1/2" in out and "tick 2/2" in out
        assert "cluster health: healthy" in out
        assert "slo query_latency_p99" in out
        assert "shard0: queries=2" in out


class TestFlightCommand:
    def test_chaos_run_prints_ring(self, capsys):
        rc = main(
            ["flight", "--shards", "2", "--nodes", "40", "--kill", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "killed shard1" in out
        assert "flight recorder" in out
        assert "breaker_trip" in out
        assert "shard_kill" in out

    def test_dump_writes_json(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        target = tmp_path / "ring.json"
        rc = main(
            ["flight", "--shards", "2", "--nodes", "40",
             "--dump", str(target)]
        )
        assert rc == 0
        assert f"wrote {target}" in capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["recorder"] == "coordinator"
        kinds = {e["kind"] for e in payload["events"]}
        assert "shard_kill" in kinds and "breaker_trip" in kinds
