"""RoCC interface protocol and host-model tests."""

import pytest

from repro.core import xset_default
from repro.errors import SimulationError
from repro.patterns import PATTERNS, build_plan, count_embeddings
from repro.sim import HostModel, RoCCInstruction, RoCCInterface, run_on_soc


class TestRoCCProtocol:
    def test_full_flow(self, medium_er):
        rocc = RoCCInterface(xset_default())
        plan = build_plan(PATTERNS["3CF"])
        rocc.config_graph(medium_er)
        rocc.config_tasklist(plan)
        rocc.run()
        report = rocc.poll()
        assert report.embeddings == count_embeddings(medium_er, plan
                                                     ).embeddings

    def test_instruction_trace(self, medium_er):
        rocc = RoCCInterface(xset_default())
        rocc.config_graph(medium_er)
        rocc.config_tasklist(build_plan(PATTERNS["3CF"]))
        rocc.run()
        rocc.poll()
        kinds = [e.instruction for e in rocc.trace]
        assert kinds == [
            RoCCInstruction.XSET_CONFIG_GRAPH,
            RoCCInstruction.XSET_CONFIG_TASKLIST,
            RoCCInstruction.XSET_RUN,
            RoCCInstruction.XSET_POLL,
        ]

    def test_run_before_config_rejected(self):
        rocc = RoCCInterface(xset_default())
        with pytest.raises(SimulationError):
            rocc.run()

    def test_tasklist_before_graph_rejected(self):
        rocc = RoCCInterface(xset_default())
        with pytest.raises(SimulationError):
            rocc.config_tasklist(build_plan(PATTERNS["3CF"]))

    def test_poll_before_run_rejected(self, medium_er):
        rocc = RoCCInterface(xset_default())
        rocc.config_graph(medium_er)
        rocc.config_tasklist(build_plan(PATTERNS["3CF"]))
        with pytest.raises(SimulationError):
            rocc.poll()

    def test_max_vertex_limits_roots(self, medium_er):
        rocc = RoCCInterface(xset_default())
        plan = build_plan(PATTERNS["3CF"])
        rocc.config_graph(medium_er)
        rocc.config_tasklist(plan)
        rocc.run(max_vertex=10)
        partial = rocc.poll()
        rocc.run()
        full = rocc.poll()
        assert partial.embeddings <= full.embeddings


class TestHostModel:
    def test_deep_pattern_falls_back_to_host(self, medium_er):
        """A 5-clique with max_hw_levels=2 forces a software prefix."""
        plan = build_plan(PATTERNS["5CF"])
        deep_cfg = xset_default(max_hw_levels=2, name="shallow-hw")
        full_cfg = xset_default()
        want = count_embeddings(medium_er, plan).embeddings
        split = run_on_soc(medium_er, plan, deep_cfg)
        whole = run_on_soc(medium_er, plan, full_cfg)
        assert split.embeddings == want
        assert whole.embeddings == want
        assert split.host_cycles > whole.host_cycles

    def test_host_cycles_include_rocc_issue(self, medium_er):
        report = run_on_soc(
            medium_er, build_plan(PATTERNS["3CF"]), xset_default()
        )
        assert report.host_cycles > 0

    def test_host_model_object(self, medium_er):
        host = HostModel(xset_default())
        report = host.run(medium_er, build_plan(PATTERNS["3CF"]))
        assert report.embeddings == count_embeddings(
            medium_er, build_plan(PATTERNS["3CF"])
        ).embeddings
