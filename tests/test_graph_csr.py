"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import CSRGraph, edges_to_csr


class TestConstruction:
    def test_from_edges_basic(self, toy_graph):
        assert toy_graph.num_vertices == 6
        assert toy_graph.num_edges == 10

    def test_rows_sorted(self, toy_graph):
        for v in range(toy_graph.num_vertices):
            row = toy_graph.neighbors(v)
            assert np.all(np.diff(row) > 0)

    def test_symmetric(self, toy_graph):
        for u in range(toy_graph.num_vertices):
            for v in toy_graph.neighbors(u):
                assert toy_graph.has_edge(int(v), u)

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.neighbors(0).size == 0

    def test_no_vertices(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(3, [(0, 3)])

    def test_negative_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(3, [(-1, 0)])

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(
                indptr=np.array([0, 2]),
                indices=np.array([1], dtype=np.int32),
            )

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(
                indptr=np.array([0, 2, 1, 3]),
                indices=np.array([1, 2, 0], dtype=np.int32),
            )


class TestQueries:
    def test_degrees(self, toy_graph):
        assert toy_graph.degree(0) == 3
        assert toy_graph.degree(5) == 2
        assert toy_graph.degrees.sum() == 2 * toy_graph.num_edges

    def test_has_edge(self, toy_graph):
        assert toy_graph.has_edge(0, 1)
        assert not toy_graph.has_edge(0, 5)

    def test_edges_each_once(self, toy_graph):
        edges = list(toy_graph.edges())
        assert len(edges) == toy_graph.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_neighbors_view_is_readonly_slice(self, toy_graph):
        row = toy_graph.neighbors(2)
        assert row.base is toy_graph.indices

    def test_row_extent(self, toy_graph):
        addr, length = toy_graph.row_extent(3)
        assert length == toy_graph.degree(3)
        assert addr == toy_graph.base_address + int(toy_graph.indptr[3])


class TestTransforms:
    def test_degree_relabel_preserves_structure(self, small_er):
        relabeled = small_er.relabeled_by_degree()
        assert relabeled.num_vertices == small_er.num_vertices
        assert relabeled.num_edges == small_er.num_edges
        assert sorted(relabeled.degrees) == sorted(small_er.degrees)

    def test_degree_relabel_descending(self, small_er):
        relabeled = small_er.relabeled_by_degree()
        degs = relabeled.degrees
        assert all(degs[i] >= degs[i + 1] for i in range(len(degs) - 1))

    def test_degree_relabel_ascending(self, small_er):
        relabeled = small_er.relabeled_by_degree(descending=False)
        degs = relabeled.degrees
        assert all(degs[i] <= degs[i + 1] for i in range(len(degs) - 1))

    def test_induced_subgraph(self, toy_graph):
        sub = toy_graph.induced_subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # triangle 0-1-2

    def test_induced_subgraph_empty_selection(self, toy_graph):
        sub = toy_graph.induced_subgraph([])
        assert sub.num_vertices == 0


class TestEdgesToCSR:
    def test_roundtrip_random(self, rng):
        n = 40
        pairs = set()
        for _ in range(100):
            u, v = rng.integers(0, n, 2)
            if u != v:
                pairs.add((min(u, v), max(u, v)))
        indptr, indices = edges_to_csr(n, pairs)
        g = CSRGraph(indptr=indptr, indices=indices)
        assert g.num_edges == len(pairs)
        assert set(g.edges()) == {(int(u), int(v)) for u, v in pairs}

    def test_empty_edges(self):
        indptr, indices = edges_to_csr(4, [])
        assert indptr.tolist() == [0, 0, 0, 0, 0]
        assert indices.size == 0


class TestFingerprint:
    def test_stable_across_identical_builds(self, toy_graph):
        edges = list(toy_graph.edges())
        twin = CSRGraph.from_edges(toy_graph.num_vertices, edges,
                                   name="different-name")
        twin.base_address = toy_graph.base_address + 0x1000
        assert twin.fingerprint() == toy_graph.fingerprint()

    def test_changes_on_edge_edit(self, toy_graph):
        edges = list(toy_graph.edges())
        added = CSRGraph.from_edges(
            toy_graph.num_vertices, edges + [(1, 5)]
        )
        removed = CSRGraph.from_edges(toy_graph.num_vertices, edges[1:])
        fps = {toy_graph.fingerprint(), added.fingerprint(),
               removed.fingerprint()}
        assert len(fps) == 3

    def test_labels_change_fingerprint(self, toy_graph):
        labelled = toy_graph.with_labels([0, 1, 0, 1, 0, 1])
        relabelled = toy_graph.with_labels([1, 0, 1, 0, 1, 0])
        fps = {toy_graph.fingerprint(), labelled.fingerprint(),
               relabelled.fingerprint()}
        assert len(fps) == 3

    def test_vertex_count_matters(self):
        # same (empty) arrays, different number of isolated vertices
        a = CSRGraph.empty(3)
        b = CSRGraph.empty(4)
        assert a.fingerprint() != b.fingerprint()

    def test_survives_io_roundtrip(self, toy_graph, tmp_path):
        from repro.graph.io import load_edge_list, save_edge_list

        path = tmp_path / "toy.txt"
        save_edge_list(toy_graph, path)
        loaded = load_edge_list(path)
        assert loaded.fingerprint() == toy_graph.fingerprint()

    def test_gzip_roundtrip(self, small_er, tmp_path):
        from repro.graph.io import load_edge_list, save_edge_list

        # every vertex of the fixture has degree > 0, so ids survive the
        # load-time compaction and the CSR arrays reproduce exactly
        assert int(small_er.degrees.min()) > 0
        path = tmp_path / "er.txt.gz"
        save_edge_list(small_er, path)
        assert load_edge_list(path).fingerprint() == small_er.fingerprint()
