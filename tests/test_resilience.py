"""The resilience layer: fault injection, breakers, watchdog, degradation.

Deterministic chaos testing in the repo's established style — injectable
clocks, recorded sleeps and injectable executors keep every scenario
single-threaded and sleep-free except where a real pool is the point.
The closing chaos suite runs a seeded fault plan (crashes, hangs,
corrupted counts, memory stalls) against all three service modes and
asserts the service's core promise under fire: every query that is not
shed still returns the *correct* embedding count, and no waiter hangs.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.core.api import XSetAccelerator
from repro.errors import (
    CircuitOpenError,
    FaultInjectionError,
    InjectedCrashError,
    JobTimeoutError,
    LoadShedError,
    WorkerCrashError,
)
from repro.patterns.pattern import PATTERNS
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    DegradationPolicy,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    HealthState,
    ResilienceConfig,
    Watchdog,
    active,
    assess,
    inject,
)
from repro.service import InlineExecutor, JobStatus, QueryService


class FakeClock:
    """Hand-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class RecordingSleep:
    def __init__(self) -> None:
        self.calls: list[float] = []

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)


class FlakyExecutor(InlineExecutor):
    """Fails the first ``failures`` submissions like a dying worker."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.submissions = 0

    def submit(self, fn, /, *args, **kwargs):
        self.submissions += 1
        if self.submissions <= self.failures:
            raise BrokenExecutor(
                f"worker died (injected failure #{self.submissions})"
            )
        return super().submit(fn, *args, **kwargs)


class HangingExecutor:
    """Returns futures that never complete (a worker stuck forever)."""

    def __init__(self) -> None:
        self.futures: list[Future] = []

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        self.futures.append(future)
        return future

    def shutdown(self, wait: bool = True, **kwargs) -> None:
        pass


@pytest.fixture
def graph(small_er):
    return small_er


def make_service(graph, **kwargs):
    kwargs.setdefault("mode", "inline")
    svc = QueryService(**kwargs)
    gid = svc.register_graph(graph, graph_id="g")
    return svc, gid


# ---------------------------------------------------------------------------
# fault plans and injectors
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_for_job_is_deterministic(self):
        specs = (
            FaultSpec(site="worker.run", kind=FaultKind.CRASH, rate=0.5),
            FaultSpec(site="engine.batched", kind=FaultKind.CORRUPT,
                      rate=0.3),
        )
        a = FaultPlan(seed=42, specs=specs)
        b = FaultPlan(seed=42, specs=specs)
        for job_id in range(1, 50):
            for attempt in (1, 2, 3):
                assert a.for_job(job_id, attempt) == \
                    b.for_job(job_id, attempt)

    def test_seed_changes_assignment(self):
        spec = FaultSpec(site="worker.run", kind=FaultKind.CRASH, rate=0.5)
        picks = lambda seed: tuple(  # noqa: E731
            bool(FaultPlan(seed=seed, specs=(spec,)).for_job(j))
            for j in range(1, 40)
        )
        assert picks(1) != picks(2)

    def test_rate_one_always_assigns(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="worker.run", kind=FaultKind.HANG),
        ))
        assert all(plan.for_job(j) for j in range(1, 10))

    def test_max_fires_budget(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site="worker.run", kind=FaultKind.CRASH,
                      max_fires=2),
        ))
        hits = [bool(plan.for_job(j)) for j in range(1, 6)]
        assert hits == [True, True, False, False, False]
        assert plan.assigned() == {"worker.run:crash": 2}

    def test_invalid_specs_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(site="worker.run", kind=FaultKind.CRASH, rate=1.5)
        with pytest.raises(FaultInjectionError):
            FaultSpec(site="memory.stream", kind=FaultKind.STALL,
                      factor=0.0)
        with pytest.raises(FaultInjectionError):
            FaultSpec(site="engine.event", kind=FaultKind.CORRUPT, bit=-1)


class TestFaultInjector:
    def test_crash_is_crash_shaped_and_site_tagged(self):
        inj = FaultInjector((
            FaultSpec(site="worker.run", kind=FaultKind.CRASH),
        ))
        with pytest.raises(InjectedCrashError) as err:
            inj.fire("worker.run")
        assert isinstance(err.value, WorkerCrashError)
        assert err.value.site == "worker.run"
        assert inj.events == {"worker.run:crash": 1}

    def test_injected_crash_pickles_with_site(self):
        import pickle

        err = pickle.loads(pickle.dumps(InjectedCrashError("engine.event")))
        assert err.site == "engine.event"

    def test_one_shot_fires_once_on_selected_hit(self):
        sleep = RecordingSleep()
        inj = FaultInjector(
            (FaultSpec(site="worker.run", kind=FaultKind.HANG,
                       seconds=0.25, on_hit=1),),
            sleep=sleep,
        )
        inj.fire("worker.run")   # hit 0: not yet
        inj.fire("worker.run")   # hit 1: fires
        inj.fire("worker.run")   # spent
        assert sleep.calls == [0.25]
        assert inj.events == {"worker.run:hang": 1}

    def test_wrong_site_never_fires(self):
        inj = FaultInjector((
            FaultSpec(site="engine.batched", kind=FaultKind.CRASH),
        ))
        inj.fire("engine.event")
        inj.fire("worker.run")
        assert inj.events == {}

    def test_stall_inflates_every_access_counts_once(self):
        inj = FaultInjector((
            FaultSpec(site="memory.stream", kind=FaultKind.STALL,
                      factor=4.0),
        ))
        assert inj.stall("memory.stream", 10.0, 100.0) == (40.0, 400.0)
        assert inj.stall("memory.stream", 1.0, 2.0) == (4.0, 8.0)
        assert inj.events == {"memory.stream:stall": 1}

    def test_context_scoping(self):
        inj = FaultInjector(())
        assert active() is None
        with inject(inj) as armed:
            assert active() is armed
        assert active() is None


# ---------------------------------------------------------------------------
# circuit breakers
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("recovery_seconds", 30.0)
        return CircuitBreaker("batched", clock=clock, **kwargs), clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()       # consumes the single probe slot
        assert not breaker.allow()   # concurrent probes bounded
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_and_restarts_clock(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_failure("wrong_result")
        assert breaker.state is BreakerState.OPEN
        clock.advance(29.0)
        assert not breaker.allow()
        snap = breaker.snapshot()
        assert snap.last_failure_reason == "wrong_result"
        assert snap.state == "open"


# ---------------------------------------------------------------------------
# watchdog
# ---------------------------------------------------------------------------


class _StubJob:
    """Just enough of a Job for the watchdog's table."""

    class _Handle:
        def __init__(self, job_id):
            self.job_id = job_id
            self.pattern_name = "3CF"

    def __init__(self, job_id, deadline):
        self.handle = self._Handle(job_id)
        self.graph_id = "g"
        self.deadline = deadline


class TestWatchdog:
    def test_scan_pops_only_expired(self):
        clock = FakeClock()
        dog = Watchdog(clock)
        dog.watch(_StubJob(1, deadline=5.0))
        dog.watch(_StubJob(2, deadline=50.0))
        dog.watch(_StubJob(3, deadline=None))
        clock.advance(10.0)
        expired = dog.scan()
        assert [job.handle.job_id for job, _ in expired] == [1]
        assert dog.running_ids() == (2, 3)
        assert dog.abandoned == 1

    def test_unwatch_claims_ownership_exactly_once(self):
        clock = FakeClock()
        dog = Watchdog(clock)
        dog.watch(_StubJob(7, deadline=1.0))
        clock.advance(2.0)
        assert dog.scan()            # watchdog claimed it...
        assert not dog.unwatch(7)    # ...so the completion side must not
        dog.watch(_StubJob(8, deadline=1.0))
        assert dog.unwatch(8)        # completion first: scan finds nothing
        assert dog.scan() == []

    def test_enforcement_off_never_abandons(self):
        clock = FakeClock()
        dog = Watchdog(clock, enforce_deadlines=False)
        dog.watch(_StubJob(1, deadline=1.0))
        clock.advance(100.0)
        assert dog.scan() == []


# ---------------------------------------------------------------------------
# degradation state machine
# ---------------------------------------------------------------------------


class TestDegradation:
    def test_watermarks(self):
        policy = DegradationPolicy()
        assert assess(0, 100, (), policy) is HealthState.HEALTHY
        assert assess(49, 100, (), policy) is HealthState.HEALTHY
        assert assess(50, 100, (), policy) is HealthState.DEGRADED
        assert assess(90, 100, (), policy) is HealthState.OVERLOADED

    def test_any_non_closed_breaker_degrades(self):
        policy = DegradationPolicy()
        states = (BreakerState.CLOSED, BreakerState.OPEN)
        assert assess(0, 100, states, policy) is HealthState.DEGRADED
        assert assess(
            0, 100, (BreakerState.HALF_OPEN,), policy
        ) is HealthState.DEGRADED


# ---------------------------------------------------------------------------
# service integration: satellites
# ---------------------------------------------------------------------------


class TestNonPositiveTimeout:
    @pytest.mark.parametrize("timeout", [0, -1.0])
    def test_rejected_at_submit_as_timeout(self, graph, timeout):
        svc, gid = make_service(graph)
        handle = svc.submit(gid, PATTERNS["3CF"], timeout=timeout)
        assert handle.status is JobStatus.TIMEOUT
        with pytest.raises(JobTimeoutError, match="deadline expired"):
            handle.result()
        stats = svc.stats()
        assert stats.timed_out == 1
        assert stats.submitted == 1
        assert stats.completed == 0
        assert stats.metrics['repro_jobs_timed_out_total'] == 1.0

    def test_traced_submit_closes_span(self, graph):
        svc, gid = make_service(graph, observability=True)
        svc.submit(gid, PATTERNS["3CF"], timeout=0)
        spans = svc._observation.tracer.finished()
        job_spans = [s for s in spans if s.name == "service.job"]
        assert len(job_spans) == 1
        assert job_spans[0].attrs["outcome"] == "timeout"


class TestLoadShedding:
    def test_overloaded_sheds_low_priority_only(self, graph):
        svc, gid = make_service(
            graph, queue_limit=10, start_paused=True
        )
        for _ in range(9):  # 9/10 >= the 0.9 overload watermark
            svc.submit(gid, PATTERNS["3CF"], use_cache=False)
        assert svc.health().state is HealthState.OVERLOADED
        with pytest.raises(LoadShedError, match="overloaded"):
            svc.submit(gid, PATTERNS["TT"], priority=1, use_cache=False)
        # important work (priority < shed floor) is still accepted
        keep = svc.submit(gid, PATTERNS["TT"], priority=0, use_cache=False)
        stats = svc.stats()
        assert stats.shed == 1
        assert stats.metrics["repro_jobs_shed_total"] == 1.0
        svc.resume()
        assert keep.result(timeout=60).embeddings >= 0
        svc.shutdown()

    def test_disabled_profile_never_sheds(self, graph):
        svc, gid = make_service(
            graph, queue_limit=10, start_paused=True,
            resilience=ResilienceConfig.disabled(),
        )
        for _ in range(9):
            svc.submit(gid, PATTERNS["3CF"], use_cache=False)
        svc.submit(gid, PATTERNS["TT"], priority=5, use_cache=False)
        assert svc.stats().shed == 0
        assert svc.stats().health == "healthy"


class TestBreakerRouting:
    def trip(self, svc, engine):
        board = svc._breakers
        for _ in range(svc.resilience.failure_threshold):
            board.for_engine(engine).record_failure()

    def test_open_breaker_reroutes_to_fallback(self, graph):
        clock = FakeClock()
        svc, gid = make_service(
            graph, clock=clock,
            resilience=ResilienceConfig(
                fallbacks=(("batched", "event"),)
            ),
        )
        self.trip(svc, "batched")
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched",
                            use_cache=False)
        report = handle.result(timeout=60)
        expected = XSetAccelerator(engine="event").count(
            graph, PATTERNS["3CF"]
        ).embeddings
        assert report.embeddings == expected
        assert handle.engine == "event"
        stats = svc.stats()
        assert stats.rerouted == 1
        assert stats.health == "degraded"  # one breaker is open

    def test_fail_fast_without_fallback_raises_typed(self, graph):
        clock = FakeClock()
        svc, gid = make_service(
            graph, clock=clock,
            resilience=ResilienceConfig(fail_fast=True),
        )
        self.trip(svc, "batched")
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched",
                            use_cache=False)
        assert handle.status is JobStatus.FAILED
        with pytest.raises(CircuitOpenError, match="breaker is open"):
            handle.result()

    def test_advisory_default_dispatches_through_open_breaker(self, graph):
        clock = FakeClock()
        svc, gid = make_service(graph, clock=clock)  # default profile
        self.trip(svc, "batched")
        report = svc.count(gid, PATTERNS["3CF"], engine="batched",
                           use_cache=False)
        expected = XSetAccelerator(engine="batched").count(
            graph, PATTERNS["3CF"]
        ).embeddings
        assert report.embeddings == expected
        assert svc.stats().rerouted == 0

    def test_crash_exhaustion_falls_back_to_second_engine(self, graph):
        sleep = RecordingSleep()
        executor = FlakyExecutor(failures=3)  # attempts 1..3 all crash
        svc, gid = make_service(
            graph, executor=executor, sleep=sleep,
            resilience=ResilienceConfig(
                fallbacks=(("batched", "event"),)
            ),
        )
        handle = svc.submit(gid, PATTERNS["3CF"], engine="batched",
                            use_cache=False)
        report = handle.result(timeout=60)
        expected = XSetAccelerator(engine="event").count(
            graph, PATTERNS["3CF"]
        ).embeddings
        assert report.embeddings == expected
        assert handle.engine == "event"
        stats = svc.stats()
        assert stats.rerouted == 1
        assert stats.retries == svc.retry.max_retries
        assert stats.failed == 0


class TestCrossCheck:
    def corrupt_config(self, **overrides):
        overrides.setdefault("verify_fraction", 1.0)
        overrides.setdefault("fallbacks", (("batched", "event"),))
        return ResilienceConfig(**overrides)

    def test_mismatch_serves_verified_report(self, graph):
        svc, gid = make_service(
            graph, resilience=self.corrupt_config()
        )
        svc.arm_faults(FaultPlan(seed=1, specs=(
            FaultSpec(site="engine.batched", kind=FaultKind.CORRUPT,
                      bit=5),
        )))
        report = svc.count(gid, PATTERNS["3CF"], engine="batched",
                           use_cache=False)
        expected = XSetAccelerator(engine="batched").count(
            graph, PATTERNS["3CF"]
        ).embeddings
        assert report.embeddings == expected  # the verified count won
        assert report.notes["crosscheck"]["mismatch"] is True
        assert report.notes["injected"] == {"engine.batched:corrupt": 1}
        stats = svc.stats()
        assert stats.crosscheck_mismatches == 1
        assert stats.faults_injected == 1
        board = svc._breakers
        snap = board.for_engine("batched").snapshot()
        assert snap.last_failure_reason == "wrong_result"

    def test_corrupted_reports_never_poison_the_cache(self, graph):
        svc, gid = make_service(graph)  # verify off: corruption lands
        svc.arm_faults(FaultPlan(seed=1, specs=(
            FaultSpec(site="engine.batched", kind=FaultKind.CORRUPT,
                      bit=5),
        )))
        expected = XSetAccelerator(engine="batched").count(
            graph, PATTERNS["3CF"]
        ).embeddings
        bad = svc.count(gid, PATTERNS["3CF"], engine="batched")
        assert bad.embeddings == expected ^ (1 << 5)  # visibly corrupt
        svc.arm_faults(None)
        good = svc.count(gid, PATTERNS["3CF"], engine="batched")
        assert good.embeddings == expected
        assert good.notes == {}

    def test_sampling_is_deterministic_per_job_id(self, graph):
        cfg = self.corrupt_config(verify_fraction=0.5, verify_seed=9)
        svc_a, gid_a = make_service(graph, resilience=cfg)
        svc_b, gid_b = make_service(graph, resilience=cfg)
        checked = []
        for svc, gid in ((svc_a, gid_a), (svc_b, gid_b)):
            picks = []
            for _ in range(12):
                report = svc.count(gid, PATTERNS["3CF"],
                                   engine="batched", use_cache=False)
                picks.append("crosscheck" in report.notes)
            checked.append(picks)
        assert checked[0] == checked[1]
        assert any(checked[0]) and not all(checked[0])


class TestRunningDeadlineWatchdog:
    def test_abandons_hung_job_and_drops_late_result(self, graph):
        clock = FakeClock()
        executor = HangingExecutor()
        svc, gid = make_service(graph, clock=clock, executor=executor)
        handle = svc.submit(gid, PATTERNS["3CF"], timeout=5.0,
                            use_cache=False)
        assert handle.status is JobStatus.RUNNING
        assert svc.check_watchdog() == 0   # deadline not reached yet
        clock.advance(10.0)
        assert svc.check_watchdog() == 1
        assert handle.status is JobStatus.TIMEOUT
        with pytest.raises(JobTimeoutError, match="deadline expired"):
            handle.result()
        stats = svc.stats()
        assert stats.abandoned == 1
        assert stats.timed_out == 1
        assert stats.in_flight == 0        # the slot was freed
        assert stats.metrics["repro_jobs_abandoned_total"] == 1.0
        # the hung worker finally answers: the unwatch handshake drops it
        future = executor.futures[0]
        if not future.cancelled():
            future.set_result(object())
        assert svc.stats().completed == 0
        assert handle.status is JobStatus.TIMEOUT

    def test_jobs_without_deadline_run_forever(self, graph):
        clock = FakeClock()
        executor = HangingExecutor()
        svc, gid = make_service(graph, clock=clock, executor=executor)
        handle = svc.submit(gid, PATTERNS["3CF"], use_cache=False)
        clock.advance(1e6)
        assert svc.check_watchdog() == 0
        assert handle.status is JobStatus.RUNNING

    def test_disabled_profile_never_abandons(self, graph):
        clock = FakeClock()
        executor = HangingExecutor()
        svc, gid = make_service(
            graph, clock=clock, executor=executor,
            resilience=ResilienceConfig.disabled(),
        )
        handle = svc.submit(gid, PATTERNS["3CF"], timeout=5.0,
                            use_cache=False)
        clock.advance(10.0)
        assert svc.check_watchdog() == 0
        assert handle.status is JobStatus.RUNNING

    def test_thread_mode_watchdog_thread_fires(self, graph):
        # a real hang (injected HANG > deadline) on a real thread pool:
        # the background watchdog must release the waiter with TIMEOUT
        svc = QueryService(
            mode="thread", max_workers=1,
            resilience=ResilienceConfig(watchdog_interval=0.01),
        )
        gid = svc.register_graph(graph, graph_id="g")
        svc.arm_faults(FaultPlan(seed=0, specs=(
            FaultSpec(site="worker.run", kind=FaultKind.HANG,
                      seconds=2.0),
        )))
        handle = svc.submit(gid, PATTERNS["3CF"], timeout=0.05,
                            use_cache=False)
        with pytest.raises(JobTimeoutError):
            handle.result(timeout=30)
        assert handle.status is JobStatus.TIMEOUT
        assert svc._watchdog.alive
        assert svc.stats().abandoned == 1
        svc.shutdown()
        assert not svc._watchdog.alive


class TestStuckDispatcherDetection:
    def test_shutdown_reports_unjoinable_dispatcher(self, graph, caplog):
        import logging
        import threading
        import time as _time

        svc, gid = make_service(graph, mode="thread")
        release = threading.Event()
        stuck = threading.Thread(target=release.wait, daemon=True)
        stuck.start()
        svc._dispatcher = stuck  # stand-in for a wedged dispatcher
        with caplog.at_level(logging.WARNING, "repro.service.service"):
            t0 = _time.perf_counter()
            svc.shutdown(join_timeout=0.05)
            elapsed = _time.perf_counter() - t0
        release.set()
        assert elapsed < 2.0  # did not block on the wedged thread
        assert any(
            "dispatcher thread failed to stop" in r.message
            for r in caplog.records
        )
        assert svc.stats().dispatcher_stuck is True
        assert svc.health().dispatcher_stuck is True

    def test_clean_shutdown_is_not_stuck(self, graph):
        svc, gid = make_service(graph, mode="thread")
        svc.count(gid, PATTERNS["3CF"], engine="batched")
        svc.shutdown()
        assert svc.stats().dispatcher_stuck is False


class TestUnarmedIsByteIdentical:
    @pytest.mark.parametrize("engine", ["batched", "event"])
    def test_default_resilience_matches_disabled(self, graph, engine):
        reports = []
        for cfg in (None, ResilienceConfig.disabled()):
            svc, gid = make_service(graph, resilience=cfg)
            reports.append(
                svc.count(gid, PATTERNS["TT"], engine=engine,
                          use_cache=False)
            )
        a, b = reports
        assert a.embeddings == b.embeddings
        assert a.cycles == b.cycles
        assert a.tasks == b.tasks
        assert a.set_ops == b.set_ops
        assert a.notes == {} and b.notes == {}

    def test_stall_fault_only_changes_timing(self, graph):
        svc, gid = make_service(graph)
        clean = svc.count(gid, PATTERNS["3CF"], engine="event",
                          use_cache=False)
        svc.arm_faults(FaultPlan(seed=0, specs=(
            FaultSpec(site="memory.stream", kind=FaultKind.STALL,
                      factor=10.0),
        )))
        stalled = svc.count(gid, PATTERNS["3CF"], engine="event",
                            use_cache=False)
        assert stalled.embeddings == clean.embeddings
        assert stalled.cycles > clean.cycles
        assert stalled.notes["injected"] == {"memory.stream:stall": 1}


# ---------------------------------------------------------------------------
# the chaos suite: all three modes, seeded faults, exact counts
# ---------------------------------------------------------------------------

CHAOS_PATTERNS = ("3CF", "TT", "WEDGE", "DIA")


def chaos_plan(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, specs=(
        # two crash-shaped deaths somewhere in the run (retried/rerouted)
        FaultSpec(site="worker.run", kind=FaultKind.CRASH,
                  rate=0.5, max_fires=2),
        # slow compute that still finishes correctly
        FaultSpec(site="worker.run", kind=FaultKind.HANG,
                  rate=0.3, seconds=0.02),
        # silent bit-flips in the batched datapath (caught by cross-check)
        FaultSpec(site="engine.batched", kind=FaultKind.CORRUPT,
                  rate=0.5, bit=4),
        # degraded memory under the event engine
        FaultSpec(site="memory.stream", kind=FaultKind.STALL,
                  rate=0.3, factor=6.0),
    ))


@pytest.mark.parametrize("mode", ["inline", "thread", "process"])
def test_chaos_every_query_correct_no_waiter_hangs(graph, mode):
    expected = {
        name: XSetAccelerator(engine="batched").count(
            graph, PATTERNS[name]
        ).embeddings
        for name in CHAOS_PATTERNS
    }
    svc = QueryService(
        mode=mode,
        max_workers=2 if mode != "inline" else None,
        resilience=ResilienceConfig.hardened(verify_fraction=1.0),
    )
    try:
        gid = svc.register_graph(graph, graph_id="g")
        svc.arm_faults(chaos_plan(seed=2024))
        handles = [
            (name, svc.submit(gid, PATTERNS[name], engine="batched",
                              use_cache=False))
            for _ in range(3)
            for name in CHAOS_PATTERNS
        ]
        for name, handle in handles:
            # a hung waiter fails here with JobTimeoutError, not a hang
            report = handle.result(timeout=120)
            assert report.embeddings == expected[name], (
                f"{mode}: {name} returned a wrong count under chaos "
                f"(notes={report.notes})"
            )
            assert handle.status is JobStatus.DONE
        stats = svc.stats()
        assert stats.completed == len(handles)
        assert stats.failed == 0
        health = svc.health()
        assert health.faults_injected > 0, "the chaos plan never fired"
        assert stats.metrics["repro_jobs_submitted_total"] == len(handles)
    finally:
        svc.shutdown()


def test_chaos_replay_is_deterministic(graph):
    """Same seed, same job ids => the same faults are assigned."""
    runs = []
    for _ in range(2):
        svc, gid = make_service(
            graph,
            resilience=ResilienceConfig.hardened(verify_fraction=1.0),
        )
        plan = chaos_plan(seed=7)
        svc.arm_faults(plan)
        for name in CHAOS_PATTERNS:
            svc.count(gid, PATTERNS[name], engine="batched",
                      use_cache=False)
        runs.append(plan.assigned())
    assert runs[0] == runs[1]
