"""Task-list code generation, binary encoding and kernel-cache tests."""

import pytest

from repro.errors import PlanError
from repro.patterns import PATTERNS, build_plan
from repro.patterns.codegen import (
    TaskOp,
    _decode_src,
    _encode_src,
    clear_kernel_cache,
    compile_plan_kernel,
    compile_task_list,
    decode_task_op,
    emit_plan_source,
    encode_task_op,
    kernel_cache_info,
    kernel_cache_key,
    render_task_list,
)

ALL = ["3CF", "4CF", "5CF", "TT", "CYC", "DIA", "HOUSE", "WEDGE"]


class TestCompile:
    def test_triangle_ops(self):
        ops = compile_task_list(build_plan(PATTERNS["3CF"]))
        assert [o.opcode for o in ops] == ["load", "set_int"]
        leaf = ops[-1]
        assert leaf.count_only and not leaf.store
        assert leaf.filter_lt == 1  # u2 < u1

    def test_clique_chain_uses_stored_sets(self):
        ops = compile_task_list(build_plan(PATTERNS["5CF"]))
        stored_srcs = [o for o in ops if o.src_a[0] == "S"]
        assert len(stored_srcs) >= 2  # prefix reuse compiled through

    def test_induced_cycle_has_set_diff(self):
        ops = compile_task_list(build_plan(PATTERNS["CYC"]))
        assert any(o.opcode == "set_diff" for o in ops)

    def test_diamond_choose2_stops_early(self):
        ops = compile_task_list(build_plan(PATTERNS["DIA"]))
        assert max(o.level for o in ops) == 2  # levels 3 collapsed by IEP

    def test_internal_levels_store(self):
        ops = compile_task_list(build_plan(PATTERNS["4CF"]))
        internal = [o for o in ops if o.level < max(p.level for p in ops)]
        assert all(o.store for o in internal if o.src_b is None or True)

    @pytest.mark.parametrize("name", ALL)
    def test_every_pattern_compiles(self, name):
        ops = compile_task_list(build_plan(PATTERNS[name]))
        assert ops
        assert ops[-1].count_only


class TestRender:
    def test_figure10e_style(self):
        ops = compile_task_list(build_plan(PATTERNS["3CF"]))
        text = ops[-1].render()
        assert text.startswith("R[2] <- set_int")
        assert "filter<u1" in text
        assert "count_only" in text

    def test_full_listing_has_rocc_flow(self):
        text = render_task_list(build_plan(PATTERNS["DIA"]))
        assert "xset_config" in text
        assert "xset_run" in text
        assert "xset_poll" in text


class TestEncoding:
    @pytest.mark.parametrize("name", ALL)
    def test_roundtrip_every_pattern(self, name):
        for op in compile_task_list(build_plan(PATTERNS[name])):
            assert decode_task_op(encode_task_op(op)) == op

    def test_word_is_compact(self):
        ops = compile_task_list(build_plan(PATTERNS["5CF"]))
        assert all(encode_task_op(o) < (1 << 25) for o in ops)

    def test_out_of_range_rejected(self):
        bad = TaskOp(
            level=1, opcode="load", src_a=("S", 12), src_b=None,
            filter_lt=None, filter_gt=None, count_only=False, store=True,
        )
        with pytest.raises(PlanError):
            encode_task_op(bad)


class TestSrcEncodingBoundaries:
    """The 4-bit source field: sentinel and width-limit behaviour."""

    def test_none_maps_to_sentinel(self):
        assert _encode_src(None) == 15
        assert _decode_src(15) is None

    @pytest.mark.parametrize("idx", [0, 7])
    def test_stored_set_width_extremes_roundtrip(self, idx):
        assert _decode_src(_encode_src(("S", idx))) == ("S", idx)

    @pytest.mark.parametrize("idx", [0, 6])
    def test_neighbour_width_extremes_roundtrip(self, idx):
        assert _decode_src(_encode_src(("N", idx))) == ("N", idx)

    def test_stored_set_eight_rejected(self):
        # S-indices occupy codes 0-7; 8 would collide with N(u0)
        with pytest.raises(PlanError, match="out of range"):
            _encode_src(("S", 8))

    def test_neighbour_seven_rejected(self):
        # N-indices occupy codes 8-14; 7 would collide with the sentinel
        with pytest.raises(PlanError, match="out of range"):
            _encode_src(("N", 7))

    @pytest.mark.parametrize("kind", ["S", "N"])
    def test_negative_rejected(self, kind):
        with pytest.raises(PlanError, match="out of range"):
            _encode_src((kind, -1))

    def test_codes_cover_the_field_without_overlap(self):
        codes = {_encode_src(("S", i)) for i in range(8)}
        codes |= {_encode_src(("N", i)) for i in range(7)}
        codes.add(_encode_src(None))
        assert codes == set(range(16))

    def test_max_width_task_op_roundtrips(self):
        op = TaskOp(
            level=15, opcode="set_diff", src_a=("S", 7), src_b=("N", 6),
            filter_lt=14, filter_gt=14, count_only=True, store=True,
        )
        assert decode_task_op(encode_task_op(op)) == op
        assert encode_task_op(op) < (1 << 25)


class TestKernelCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_kernel_cache()
        yield
        clear_kernel_cache()

    def test_same_plan_hits(self):
        plan = build_plan(PATTERNS["3CF"])
        k1 = compile_plan_kernel(plan)
        k2 = compile_plan_kernel(plan)
        assert k1 is k2
        info = kernel_cache_info()
        assert info == {"size": 1, "hits": 1, "misses": 1}

    def test_equal_plans_share_a_kernel(self):
        # two independently built (equal) plans must key identically
        k1 = compile_plan_kernel(build_plan(PATTERNS["TT"]))
        k2 = compile_plan_kernel(build_plan(PATTERNS["TT"]))
        assert k1 is k2

    def test_configs_share_kernels(self):
        # SystemConfig knobs never reach the emitted source, so the cache
        # key must not depend on them: one kernel serves every config
        plan = build_plan(PATTERNS["3CF"])
        key = kernel_cache_key(plan)
        assert key == kernel_cache_key(plan)
        from repro.core import xset_default

        cfg_a = xset_default(engine="codegen")
        cfg_b = xset_default(engine="codegen", num_pes=4, bitmap_width=64)
        # the key is a pure function of the plan + labelledness; configs
        # do not participate at all
        assert kernel_cache_key(plan) == key
        assert cfg_a != cfg_b  # the configs really do differ

    def test_distinct_plans_miss(self):
        compile_plan_kernel(build_plan(PATTERNS["3CF"]))
        compile_plan_kernel(build_plan(PATTERNS["TT"]))
        info = kernel_cache_info()
        assert info["size"] == 2
        assert info["misses"] == 2

    def test_labelledness_is_part_of_the_key(self):
        plan = build_plan(PATTERNS["3CF"])
        k_plain = compile_plan_kernel(plan, use_labels=False)
        k_label = compile_plan_kernel(plan, use_labels=True)
        assert k_plain is not k_label
        assert kernel_cache_info()["size"] == 2

    def test_collection_mode_is_part_of_the_key(self):
        a = build_plan(PATTERNS["DIA"])  # choose2 by default
        b = build_plan(PATTERNS["DIA"], collection="enumerate")
        assert kernel_cache_key(a) != kernel_cache_key(b)

    def test_clear_resets_everything(self):
        compile_plan_kernel(build_plan(PATTERNS["3CF"]))
        clear_kernel_cache()
        assert kernel_cache_info() == {"size": 0, "hits": 0, "misses": 0}


class TestEmittedSource:
    def test_single_bound_fuses_to_one_comparison(self):
        # TT carries exactly one upper bound per bounded level: it must
        # compile to a direct compare, never a reduce over one column
        source = emit_plan_source(build_plan(PATTERNS["TT"]))
        assert "cand < emb[owner, 1]" in source
        assert ".min(axis=1)" not in source

    def test_multi_bound_fuses_to_constant_column_reduce(self):
        # 3CF level 2 is bounded by both u0 and u1 — the columns appear
        # as a pattern-constant tuple
        source = emit_plan_source(build_plan(PATTERNS["3CF"]))
        assert "cand < emb[owner, 0]" in source  # level 1, single bound
        assert "emb[:, (0, 1)].min(axis=1)[owner]" in source  # level 2

    def test_level_loop_is_unrolled(self):
        plan = build_plan(PATTERNS["4CF"])
        source = emit_plan_source(plan)
        for level in range(1, plan.stop_level + 1):
            assert f"# -- level {level}:" in source
        assert "for level" not in source  # nothing interpreted at runtime

    def test_labels_only_emitted_when_requested(self):
        plan = build_plan(PATTERNS["3CF"])
        assert "labels" not in emit_plan_source(plan, use_labels=False)

    def test_source_is_valid_python(self):
        for name in ALL:
            compile(emit_plan_source(build_plan(PATTERNS[name])),
                    "<test>", "exec")
