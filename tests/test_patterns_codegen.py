"""Task-list code generation and binary encoding tests."""

import pytest

from repro.errors import PlanError
from repro.patterns import PATTERNS, build_plan
from repro.patterns.codegen import (
    TaskOp,
    compile_task_list,
    decode_task_op,
    encode_task_op,
    render_task_list,
)

ALL = ["3CF", "4CF", "5CF", "TT", "CYC", "DIA", "HOUSE", "WEDGE"]


class TestCompile:
    def test_triangle_ops(self):
        ops = compile_task_list(build_plan(PATTERNS["3CF"]))
        assert [o.opcode for o in ops] == ["load", "set_int"]
        leaf = ops[-1]
        assert leaf.count_only and not leaf.store
        assert leaf.filter_lt == 1  # u2 < u1

    def test_clique_chain_uses_stored_sets(self):
        ops = compile_task_list(build_plan(PATTERNS["5CF"]))
        stored_srcs = [o for o in ops if o.src_a[0] == "S"]
        assert len(stored_srcs) >= 2  # prefix reuse compiled through

    def test_induced_cycle_has_set_diff(self):
        ops = compile_task_list(build_plan(PATTERNS["CYC"]))
        assert any(o.opcode == "set_diff" for o in ops)

    def test_diamond_choose2_stops_early(self):
        ops = compile_task_list(build_plan(PATTERNS["DIA"]))
        assert max(o.level for o in ops) == 2  # levels 3 collapsed by IEP

    def test_internal_levels_store(self):
        ops = compile_task_list(build_plan(PATTERNS["4CF"]))
        internal = [o for o in ops if o.level < max(p.level for p in ops)]
        assert all(o.store for o in internal if o.src_b is None or True)

    @pytest.mark.parametrize("name", ALL)
    def test_every_pattern_compiles(self, name):
        ops = compile_task_list(build_plan(PATTERNS[name]))
        assert ops
        assert ops[-1].count_only


class TestRender:
    def test_figure10e_style(self):
        ops = compile_task_list(build_plan(PATTERNS["3CF"]))
        text = ops[-1].render()
        assert text.startswith("R[2] <- set_int")
        assert "filter<u1" in text
        assert "count_only" in text

    def test_full_listing_has_rocc_flow(self):
        text = render_task_list(build_plan(PATTERNS["DIA"]))
        assert "xset_config" in text
        assert "xset_run" in text
        assert "xset_poll" in text


class TestEncoding:
    @pytest.mark.parametrize("name", ALL)
    def test_roundtrip_every_pattern(self, name):
        for op in compile_task_list(build_plan(PATTERNS[name])):
            assert decode_task_op(encode_task_op(op)) == op

    def test_word_is_compact(self):
        ops = compile_task_list(build_plan(PATTERNS["5CF"]))
        assert all(encode_task_op(o) < (1 << 25) for o in ops)

    def test_out_of_range_rejected(self):
        bad = TaskOp(
            level=1, opcode="load", src_a=("S", 12), src_b=None,
            filter_lt=None, filter_gt=None, count_only=False, store=True,
        )
        with pytest.raises(PlanError):
            encode_task_op(bad)
