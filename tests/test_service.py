"""Query-service tests: equivalence, caching, registry, priorities, stats.

The acceptance property lives here: for every registered pattern on two
generated graphs, the service returns counts identical to direct
``XSetAccelerator.count`` under both the inline and the process-pool
executors, and repeats are served from the result cache.
"""

from __future__ import annotations

import pytest

from repro.core.api import XSetAccelerator
from repro.errors import ServiceError
from repro.graph.generators import erdos_renyi
from repro.patterns.pattern import PATTERNS, Pattern
from repro.sched.adaptive import SchedulingConfig
from repro.service import (
    GraphRegistry,
    InlineExecutor,
    JobStatus,
    QueryService,
    pattern_cache_key,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def service_graphs():
    return [
        erdos_renyi(30, 8.0, seed=11, name="svc-er30"),
        erdos_renyi(40, 6.0, seed=7, name="svc-er40"),
    ]


@pytest.fixture(scope="module")
def direct_counts(service_graphs):
    """Ground truth from the plain, single-process accelerator path."""
    accel = XSetAccelerator(engine="batched")
    return {
        (g.name, name): accel.count(g, pattern).embeddings
        for g in service_graphs
        for name, pattern in PATTERNS.items()
    }


class TestEquivalence:
    def test_inline_counts_match_direct(self, service_graphs, direct_counts):
        with QueryService(mode="inline") as svc:
            for graph in service_graphs:
                gid = svc.register_graph(graph)
                for name, pattern in PATTERNS.items():
                    report = svc.count(gid, pattern, engine="batched")
                    assert report.embeddings == \
                        direct_counts[(graph.name, name)], (graph.name, name)

    def test_process_pool_counts_match_direct(self, service_graphs,
                                              direct_counts):
        with QueryService(mode="process", max_workers=2) as svc:
            handles = []
            for graph in service_graphs:
                gid = svc.register_graph(graph)
                handles += [
                    (graph.name, name,
                     svc.submit(gid, pattern, engine="batched"))
                    for name, pattern in PATTERNS.items()
                ]
            for graph_name, name, handle in handles:
                report = handle.result(timeout=300)
                assert report.embeddings == \
                    direct_counts[(graph_name, name)], (graph_name, name)

    def test_thread_mode_counts_match_direct(self, service_graphs,
                                             direct_counts):
        graph = service_graphs[0]
        with QueryService(mode="thread", max_workers=2) as svc:
            gid = svc.register_graph(graph)
            reports = svc.count_many(
                gid, list(PATTERNS.values()), engine="batched"
            )
        for name, report in reports.items():
            assert report.embeddings == direct_counts[(graph.name, name)]

    def test_event_engine_through_service(self, service_graphs):
        graph = service_graphs[0]
        expected = XSetAccelerator().count(graph, PATTERNS["3CF"])
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(graph)
            report = svc.count(gid, PATTERNS["3CF"], engine="event")
        assert report.embeddings == expected.embeddings
        assert report.cycles == expected.cycles


class TestResultCache:
    def test_repeat_query_hits_cache(self, service_graphs):
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(service_graphs[0])
            first = svc.submit(gid, PATTERNS["3CF"], engine="batched")
            r1 = first.result()
            second = svc.submit(gid, PATTERNS["3CF"], engine="batched")
            r2 = second.result()
            assert not first.from_cache and second.from_cache
            assert r2 is r1  # the very same report object is returned
            stats = svc.stats()
            assert stats.cache_hits == 1
            assert stats.cache_hit_rate > 0

    def test_isomorphic_pattern_hits_same_entry(self, service_graphs):
        # a hand-numbered triangle is cache-equal to PATTERNS["3CF"]
        other = Pattern.from_edges("my-triangle", [(0, 2), (2, 1), (1, 0)])
        assert pattern_cache_key(other, None) == \
            pattern_cache_key(PATTERNS["3CF"], None)
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(service_graphs[0])
            svc.count(gid, PATTERNS["3CF"], engine="batched")
            handle = svc.submit(gid, other, engine="batched")
            assert handle.result() and handle.from_cache

    def test_induced_default_resolves_before_keying(self, service_graphs):
        # WEDGE is in DEFAULT_INDUCED: induced=None runs an *induced* plan,
        # so it must share a key with induced=True, never induced=False
        wedge = PATTERNS["WEDGE"]
        assert pattern_cache_key(wedge, None) == \
            pattern_cache_key(wedge, True)
        assert pattern_cache_key(wedge, None) != \
            pattern_cache_key(wedge, False)
        # an isomorphic pattern whose *name* is outside DEFAULT_INDUCED
        # resolves None differently — the keys must diverge accordingly
        other = Pattern.from_edges("my-wedge", [(0, 1), (0, 2)])
        assert pattern_cache_key(other, None) != \
            pattern_cache_key(wedge, None)
        assert pattern_cache_key(other, True) == \
            pattern_cache_key(wedge, None)
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(service_graphs[0])
            default = svc.submit(gid, wedge, engine="batched")
            r_default = default.result()
            noninduced = svc.submit(
                gid, wedge, engine="batched", induced=False
            )
            assert not noninduced.from_cache  # distinct plan, distinct entry
            assert noninduced.result().embeddings != r_default.embeddings
            explicit = svc.submit(gid, wedge, engine="batched", induced=True)
            assert explicit.from_cache
            assert explicit.result().embeddings == r_default.embeddings

    def test_engine_and_config_separate_entries(self, service_graphs):
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(service_graphs[0])
            a = svc.submit(gid, PATTERNS["3CF"], engine="batched")
            a.result()
            b = svc.submit(gid, PATTERNS["3CF"], engine="event")
            b.result()
            assert not b.from_cache  # different engine → different key

    def test_use_cache_false_bypasses(self, service_graphs):
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(service_graphs[0])
            svc.count(gid, PATTERNS["3CF"], engine="batched")
            handle = svc.submit(
                gid, PATTERNS["3CF"], engine="batched", use_cache=False
            )
            handle.result()
            assert not handle.from_cache

    def test_lru_eviction(self, service_graphs):
        with QueryService(mode="inline", cache_capacity=2) as svc:
            gid = svc.register_graph(service_graphs[0])
            for name in ("3CF", "WEDGE", "P3"):
                svc.count(gid, PATTERNS[name], engine="batched")
            stats = svc.stats()
            assert stats.cache_size == 2
            assert stats.cache_evictions == 1


class TestRegistry:
    def test_reregister_same_graph_is_noop(self, service_graphs):
        registry = GraphRegistry()
        gid = registry.register(service_graphs[0])
        assert registry.register(service_graphs[0]) == gid
        assert len(registry) == 1

    def test_conflicting_register_raises(self, service_graphs):
        registry = GraphRegistry()
        registry.register(service_graphs[0], graph_id="g")
        with pytest.raises(ServiceError, match="already registered"):
            registry.register(service_graphs[1], graph_id="g")

    def test_unknown_graph_id(self):
        with QueryService(mode="inline") as svc:
            with pytest.raises(ServiceError, match="unknown graph id"):
                svc.submit("nope", PATTERNS["3CF"])

    def test_update_bumps_version_and_fingerprint(self, service_graphs):
        registry = GraphRegistry()
        gid = registry.register(service_graphs[0], graph_id="g")
        old_fp, new_fp = registry.update("g", service_graphs[1])
        assert old_fp != new_fp
        assert registry.get(gid).version == 2


class RecordingExecutor(InlineExecutor):
    """Inline executor that logs the pattern name of each dispatched job."""

    def __init__(self):
        self.dispatched: list[str] = []

    def submit(self, fn, /, *args, **kwargs):
        plan = args[3]
        self.dispatched.append(plan.pattern.name)
        return super().submit(fn, *args, **kwargs)


class TestPriorities:
    def test_lower_priority_value_runs_first(self, service_graphs):
        executor = RecordingExecutor()
        with QueryService(
            mode="inline", start_paused=True, executor=executor
        ) as svc:
            gid = svc.register_graph(service_graphs[0])
            handles = [
                svc.submit(
                    gid, PATTERNS[name], engine="batched", priority=prio
                )
                for prio, name in ((5, "3CF"), (1, "WEDGE"), (3, "P3"))
            ]
            assert all(h.status is JobStatus.PENDING for h in handles)
            assert svc.stats().queue_depth == 3
            svc.resume()
            for handle in handles:
                handle.result(timeout=60)
        assert executor.dispatched == ["WEDGE", "P3", "3CF"]

    def test_fifo_within_priority(self, service_graphs):
        executor = RecordingExecutor()
        with QueryService(
            mode="inline", start_paused=True, executor=executor,
            scheduling=SchedulingConfig(policy="fifo"),
        ) as svc:
            gid = svc.register_graph(service_graphs[0])
            for name in ("3CF", "WEDGE", "P3"):
                svc.submit(gid, PATTERNS[name], engine="batched")
            svc.resume()
        assert executor.dispatched == ["3CF", "WEDGE", "P3"]


class TestStatsAndLifecycle:
    def test_stats_fields(self, service_graphs):
        with QueryService(mode="inline") as svc:
            gid = svc.register_graph(service_graphs[0])
            svc.count(gid, PATTERNS["3CF"], engine="batched")
            stats = svc.stats()
        assert stats.mode == "inline"
        assert stats.graphs == 1
        assert stats.submitted == 1 and stats.completed == 1
        assert stats.failed == 0 and stats.in_flight == 0
        assert "batched" in stats.latency
        assert stats.latency["batched"]["count"] == 1
        for pct in ("p50", "p90", "p99"):
            assert stats.latency["batched"][pct] >= 0
        text = stats.summary()
        assert "cache" in text and "hit rate" in text

    def test_submit_after_shutdown_raises(self, service_graphs):
        svc = QueryService(mode="inline")
        gid = svc.register_graph(service_graphs[0])
        svc.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            svc.submit(gid, PATTERNS["3CF"])

    def test_bad_mode_rejected(self):
        with pytest.raises(ServiceError, match="unknown service mode"):
            QueryService(mode="gpu")


class TestCountManyAPI:
    def test_parallel_count_many_matches_sequential(self, service_graphs,
                                                    direct_counts):
        graph = service_graphs[1]
        accel = XSetAccelerator(engine="batched")
        patterns = [PATTERNS[n] for n in ("3CF", "WEDGE", "TT", "DIA")]
        reports = accel.count_many(
            graph, patterns, parallel=True, mode="thread", max_workers=2
        )
        for pattern in patterns:
            assert reports[pattern.name].embeddings == \
                direct_counts[(graph.name, pattern.name)]
