"""Cluster-wide observability: trace propagation, federation, SLOs, flight.

One distributed query must yield one coherent story: the coordinator's
scatter spans, every shard's service → engine → simulator subtree
(re-anchored to coordinator time), a federated Prometheus registry
labelled by shard, SLO status in the health report, and a flight-recorder
ring that dumps itself when chaos strikes.
"""

import json

import pytest

from repro.cluster import LocalCluster
from repro.core.config import xset_default
from repro.errors import ClusterError
from repro.graph import erdos_renyi
from repro.obs import (
    AGGREGATE_SHARD,
    FederatedMetrics,
    FlightRecorder,
    MetricsDeltaTracker,
    MetricsRegistry,
    SLO,
    SLOTracker,
    TraceContext,
    Tracer,
    collect_job_spans,
    new_trace_id,
)
from repro.obs.flight import FLIGHT_DIR_ENV
from repro.patterns import PATTERNS, build_plan
from repro.resilience import HealthState
from repro.sim.host import run_on_soc


def demo_graph(n=60, deg=6.0, seed=11):
    return erdos_renyi(n, deg, seed=seed, name=f"obsdemo{n}")


# -- trace context ----------------------------------------------------------


class TestTraceContext:
    def test_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(int(t, 16) >= 0 for t in ids)

    def test_skew_measures_distance_from_anchor(self):
        ctx = TraceContext(trace_id="t", parent_span_id=7, anchor=100.0)
        assert ctx.skew(now=100.5) == pytest.approx(0.5)

    def test_frozen(self):
        ctx = TraceContext(trace_id="t")
        with pytest.raises(AttributeError):
            ctx.trace_id = "other"


class TestCollectJobSpans:
    def test_selects_one_jobs_tree(self):
        tracer = Tracer()
        with tracer.span("service.job", job_id=1):
            with tracer.span("worker.run_job"):
                with tracer.span("engine.event"):
                    pass
        with tracer.span("service.job", job_id=2):
            with tracer.span("worker.run_job"):
                pass
        with tracer.span("unrelated"):
            pass
        spans = collect_job_spans(tracer.finished(), 1)
        assert sorted(sp.name for sp in spans) == [
            "engine.event", "service.job", "worker.run_job"
        ]
        root = [sp for sp in spans if sp.name == "service.job"]
        assert len(root) == 1 and root[0].attrs["job_id"] == 1

    def test_missing_job_is_empty(self):
        tracer = Tracer()
        with tracer.span("service.job", job_id=1):
            pass
        assert collect_job_spans(tracer.finished(), 99) == []


# -- SLO engine -------------------------------------------------------------


class TestSLO:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("x", "throughput", 1.0)
        with pytest.raises(ValueError):
            SLO("x", "latency", 0.0)
        with pytest.raises(ValueError):
            SLO("x", "latency", 1.0, percentile=0.0)
        with pytest.raises(ValueError):
            SLO("x", "error_rate", 1.5)

    def test_budget_fraction(self):
        lat = SLO("lat", "latency", 1.0, percentile=99.0)
        assert lat.budget_fraction == pytest.approx(0.01)
        err = SLO("err", "error_rate", 0.02)
        assert err.budget_fraction == pytest.approx(0.02)

    def test_no_samples_is_met(self):
        tracker = SLOTracker((SLO("lat", "latency", 1.0),))
        status = tracker.evaluate()["lat"]
        assert status.met and status.burn_rate == 0.0
        assert status.samples == 0
        assert tracker.violated() == []

    def test_latency_violation_and_burn(self):
        tracker = SLOTracker(
            (SLO("lat", "latency", 0.1, percentile=50.0),)
        )
        for _ in range(10):
            tracker.record(1.0)
        status = tracker.evaluate()["lat"]
        assert not status.met
        assert status.observed == pytest.approx(1.0)
        # every sample busts the target: bad_fraction 1.0 over a 0.5
        # budget → 2x burn
        assert status.burn_rate == pytest.approx(2.0)
        assert [s.name for s in tracker.violated()] == ["lat"]

    def test_error_rate(self):
        tracker = SLOTracker((SLO("err", "error_rate", 0.25),))
        for ok in (True, True, False, False):
            tracker.record(0.01, ok=ok)
        status = tracker.evaluate()["err"]
        assert status.observed == pytest.approx(0.5)
        assert not status.met
        assert status.burn_rate == pytest.approx(2.0)

    def test_status_renders(self):
        tracker = SLOTracker((SLO("lat", "latency", 1.0),))
        tracker.record(0.05)
        status = tracker.evaluate()["lat"]
        assert "lat" in status.line() and "OK" in status.line()
        d = status.to_dict()
        assert d["met"] is True and d["kind"] == "latency"
        assert "lat" in tracker.summary()


# -- flight recorder --------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder("t", capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        assert len(rec) == 4
        assert [e.data["i"] for e in rec] == [6, 7, 8, 9]

    def test_counts_and_kind_filter(self):
        rec = FlightRecorder("t")
        rec.record("submit", job_id=1)
        rec.record("submit", job_id=2)
        rec.record("done", job_id=1)
        assert rec.counts() == {"done": 1, "submit": 2}
        assert [e.data["job_id"] for e in rec.events("submit")] == [1, 2]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder("t", capacity=0)

    def test_manual_dump(self, tmp_path):
        rec = FlightRecorder("svc", flight_dir=tmp_path)
        rec.record("submit", job_id=1)
        path = rec.dump(reason="test")
        assert path == tmp_path / "flight-svc.json"
        payload = json.loads(path.read_text())
        assert payload["recorder"] == "svc"
        assert payload["reason"] == "test"
        assert payload["events"][0]["kind"] == "submit"
        assert rec.dumps == [path]

    def test_auto_dump_requires_dir_and_dedupes(self, tmp_path):
        rec = FlightRecorder("svc")
        rec.record("boom")
        assert rec.auto_dump("crash") is None  # no dir configured

        rec = FlightRecorder("svc", flight_dir=tmp_path)
        rec.record("boom")
        first = rec.auto_dump("crash!")
        assert first is not None and first.exists()
        assert first.name == "flight-svc-crash-.json"  # sanitized
        assert rec.auto_dump("crash!") is None  # deduped per reason
        rec.clear()
        assert rec.auto_dump("crash!") is not None  # clear resets dedup

    def test_env_var_configures_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        rec = FlightRecorder("svc")
        assert rec.flight_dir == tmp_path
        assert rec.auto_dump("env") is not None


# -- metrics federation -----------------------------------------------------


class TestMetricsDelta:
    def test_counter_deltas(self):
        reg = MetricsRegistry()
        tracker = MetricsDeltaTracker(reg)
        reg.counter("jobs", "jobs").inc(3)
        snap = tracker.collect()
        assert dict(
            (name, value) for name, _, value in snap.counters
        ) == {"jobs": 3.0}
        reg.counter("jobs", "jobs").inc(2)
        snap = tracker.collect()
        assert snap.counters[0][2] == 2.0  # delta, not absolute

    def test_unchanged_registry_is_empty_snapshot(self):
        reg = MetricsRegistry()
        tracker = MetricsDeltaTracker(reg)
        reg.gauge("depth", "queue depth").set(4)
        assert not tracker.collect().empty
        assert tracker.collect().empty

    def test_gauges_ship_absolutes(self):
        reg = MetricsRegistry()
        tracker = MetricsDeltaTracker(reg)
        reg.gauge("depth", "d").set(4)
        tracker.collect()
        reg.gauge("depth", "d").set(2)
        snap = tracker.collect()
        assert snap.gauges[0][2] == 2.0

    def test_histogram_deltas(self):
        reg = MetricsRegistry()
        tracker = MetricsDeltaTracker(reg)
        hist = reg.histogram("lat", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        name, labels, bounds, counts, sum_, count = (
            tracker.collect().histograms[0]
        )
        assert bounds == (0.1, 1.0)
        assert counts == (1, 0, 1)  # non-cumulative slots incl. +Inf
        assert count == 2
        hist.observe(0.5)
        _, _, _, counts, _, count = tracker.collect().histograms[0]
        assert counts == (0, 1, 0) and count == 1


class TestFederatedMetrics:
    def test_shard_label_and_aggregate(self):
        reg = MetricsRegistry()
        tracker = MetricsDeltaTracker(reg)
        reg.counter("jobs", "jobs").inc(3)
        fed = FederatedMetrics()
        fed.apply("shard0", tracker.collect())
        reg.counter("jobs", "jobs").inc(4)
        fed.apply("shard1", tracker.collect())
        snap = fed.snapshot()
        assert snap['jobs{shard="shard0"}'] == 3.0
        assert snap['jobs{shard="shard1"}'] == 4.0

    def test_histogram_aggregate_sums(self):
        fed = FederatedMetrics()
        for shard, values in (
            ("shard0", (0.05, 0.5)), ("shard1", (0.05, 5.0))
        ):
            reg = MetricsRegistry()
            tracker = MetricsDeltaTracker(reg)
            hist = reg.histogram("lat", "l", buckets=(0.1, 1.0))
            for v in values:
                hist.observe(v)
            fed.apply(shard, tracker.collect())
        per_shard = [
            fed.registry.histogram("lat", buckets=(0.1, 1.0), shard=s)
            for s in ("shard0", "shard1")
        ]
        agg = fed.registry.histogram(
            "lat", buckets=(0.1, 1.0), shard=AGGREGATE_SHARD
        )
        for slot in range(3):
            assert agg.raw_counts()[slot] == sum(
                h.raw_counts()[slot] for h in per_shard
            )

    def test_apply_without_aggregate(self):
        reg = MetricsRegistry()
        tracker = MetricsDeltaTracker(reg)
        reg.histogram("lat", "l", buckets=(1.0,)).observe(0.5)
        fed = FederatedMetrics()
        fed.apply("coordinator", tracker.collect(), aggregate=False)
        assert AGGREGATE_SHARD not in fed.render()

    def test_none_snapshot_is_noop(self):
        fed = FederatedMetrics()
        fed.apply("shard0", None)
        assert len(fed.registry) == 0


# -- the merged cluster trace -----------------------------------------------


def _span_index(coord):
    spans = coord._tracer.finished()
    by_name = {}
    for sp in spans:
        by_name.setdefault(sp.name, []).append(sp)
    return spans, by_name


class TestClusterTracing:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_one_trace_covers_every_shard(self, shards):
        graph = demo_graph()
        with LocalCluster(
            num_shards=shards, observability=True, max_workers=1
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(graph)
            report = coord.query(gid, PATTERNS["3CF"], use_cache=False)
            trace_id = report.notes["cluster"]["trace_id"]
            _, by_name = _span_index(coord)

        assert len(by_name["cluster.query"]) == 1
        qspan = by_name["cluster.query"][0]
        assert qspan.attrs["trace_id"] == trace_id

        # span coverage scales with the shard count, one subtree each
        shard_names = {f"shard{i}" for i in range(shards)}
        for name in ("cluster.scatter", "service.job", "worker.run_job"):
            group = by_name[name]
            assert len(group) == shards, name
            assert {sp.attrs["shard"] for sp in group} == shard_names

        # every scatter span hangs off the query root and carries the id
        scatter = {
            sp.attrs["shard"]: sp for sp in by_name["cluster.scatter"]
        }
        for sspan in scatter.values():
            assert sspan.parent_id == qspan.span_id
            assert sspan.attrs["trace_id"] == trace_id
            assert sspan.attrs["outcome"] == "ok"

        # each shard's job root was re-parented under its scatter span
        # and re-anchored to coordinator time inside it
        for jspan in by_name["service.job"]:
            sspan = scatter[jspan.attrs["shard"]]
            assert jspan.parent_id == sspan.span_id
            assert jspan.start >= sspan.start - 1e-9
            assert jspan.end <= sspan.end + 1e-9
            assert jspan.attrs["trace_id"] == trace_id
            assert jspan.attrs["lane"] == jspan.attrs["shard"]
            assert "clock_skew_s" in jspan.attrs

    def test_counts_identical_traced_and_untraced(self):
        graph = demo_graph(80, 8.0)
        pattern = PATTERNS["TT"]
        reference = run_on_soc(
            graph, build_plan(pattern), xset_default()
        ).embeddings
        results = {}
        for obs in (False, True):
            with LocalCluster(
                num_shards=3, observability=obs, max_workers=1
            ) as cluster:
                gid = cluster.coordinator.register_graph(graph)
                report = cluster.coordinator.query(
                    gid, pattern, use_cache=False
                )
                results[obs] = (report.embeddings, report.cycles)
        # observability never changes what was computed, and the merged
        # count matches the single-node reference either way
        assert results[False] == results[True]
        assert results[False][0] == reference

    def test_trace_events_namespace_lanes_by_shard(self, tmp_path):
        graph = demo_graph()
        with LocalCluster(
            num_shards=3, observability=True, max_workers=1
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(graph)
            coord.query(gid, PATTERNS["3CF"], use_cache=False)
            events = coord.trace_events()
            out = tmp_path / "cluster-trace.json"
            coord.export_trace(out)

        lane_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"coordinator", "shard0", "shard1", "shard2"} <= lane_names

        # each shard's PE timeline gets its own pid (no collisions)
        pe_procs = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
            and "accelerator" in e["args"]["name"]
        }
        assert len(set(pe_procs.values())) == len(pe_procs) == 3
        assert all("shard" in name for name in pe_procs)

        payload = json.loads(out.read_text())
        assert payload["traceEvents"]  # the exported file is loadable

    def test_trace_requires_observability(self):
        with LocalCluster(num_shards=2, max_workers=1) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(demo_graph())
            report = coord.query(gid, PATTERNS["3CF"], use_cache=False)
            assert "trace_id" not in report.notes["cluster"]
            with pytest.raises(ClusterError):
                coord.trace_events()

    def test_tcp_transport_ships_spans(self):
        graph = demo_graph()
        with LocalCluster(
            num_shards=2, observability=True, transport="tcp",
            max_workers=1,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(graph)
            coord.query(gid, PATTERNS["3CF"], use_cache=False)
            _, by_name = _span_index(coord)
        # spans survived pickling over real sockets
        assert len(by_name["service.job"]) == 2


class TestFederationOverCluster:
    def test_metrics_text_labels_every_series(self):
        graph = demo_graph()
        with LocalCluster(
            num_shards=3, observability=True, max_workers=1
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(graph)
            for name in ("3CF", "TT"):
                coord.query(gid, PATTERNS[name], use_cache=False)
            text = coord.metrics_text()

        samples = [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert samples
        assert all('shard="' in line for line in samples)

        # federated latency buckets: shard="all" equals the shard sums
        def buckets(shard):
            out = {}
            for line in samples:
                if (
                    line.startswith("repro_job_latency_seconds_bucket")
                    and f'shard="{shard}"' in line
                ):
                    series, value = line.rsplit(" ", 1)
                    le = series.split('le="')[1].split('"')[0]
                    out[le] = out.get(le, 0.0) + float(value)
            return out

        agg = buckets("all")
        assert agg  # the aggregate series exists
        for le, value in agg.items():
            assert value == sum(
                buckets(f"shard{i}").get(le, 0.0) for i in range(3)
            ), le

    def test_health_federates_and_reports_slo(self):
        with LocalCluster(
            num_shards=2, observability=True, max_workers=1
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(demo_graph())
            coord.query(gid, PATTERNS["3CF"], use_cache=False)
            health = coord.health()
            assert health.state is HealthState.HEALTHY
            assert set(health.slo) == {
                "query_latency_p99", "query_error_rate"
            }
            assert all(s.met for s in health.slo.values())
            assert "slo query_latency_p99" in health.summary()
            d = health.to_dict()
            assert d["state"] == "healthy"
            assert d["slo"]["query_error_rate"]["met"] is True

    def test_slo_violation_degrades_health(self):
        with LocalCluster(num_shards=2, max_workers=1) as cluster:
            coord = cluster.coordinator
            for _ in range(5):
                coord.slo.record(0.01, ok=False)
            health = coord.health()
            assert health.state is HealthState.DEGRADED
            assert "query_error_rate" in health.slo_violations
            assert coord.flight.events("health_degraded")


class TestClusterFlight:
    def test_kill_produces_black_box_dump(self, tmp_path):
        graph = demo_graph()
        with LocalCluster(
            num_shards=3, observability=True, max_workers=1,
            flight_dir=tmp_path,
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(graph)
            coord.query(gid, PATTERNS["3CF"], use_cache=False)
            killed = cluster.kill_shard(1)
            # two partial queries: the second trips shard1's breaker
            for name in ("TT", "DIA"):
                report = coord.query(gid, PATTERNS[name], use_cache=False)
                assert report.notes["cluster"]["partial"]
            health = coord.health()
            assert health.state is not HealthState.HEALTHY
            assert killed in health.dead

            dump = tmp_path / "flight-coordinator-health-degraded.json"
            assert dump.exists()
            payload = json.loads(dump.read_text())
            kinds = {e["kind"] for e in payload["events"]}
            assert {
                "shard_kill", "shard_failure", "partial_result",
                "breaker_trip", "health_degraded",
            } <= kinds
            trip = [
                e for e in payload["events"]
                if e["kind"] == "breaker_trip"
            ]
            assert trip and trip[0]["shard"] == killed

    def test_shard_flight_op(self):
        with LocalCluster(num_shards=2, max_workers=1) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(demo_graph())
            coord.query(gid, PATTERNS["3CF"], use_cache=False)
            payload = coord.shard_flight("shard0")
            kinds = {e["kind"] for e in payload["events"]}
            assert {"submit", "dispatch", "done"} <= kinds
            with pytest.raises(ClusterError):
                coord.shard_flight("nope")

    def test_all_shards_lost_dumps_and_raises(self, tmp_path):
        with LocalCluster(
            num_shards=2, max_workers=1, flight_dir=tmp_path
        ) as cluster:
            coord = cluster.coordinator
            gid = coord.register_graph(demo_graph())
            cluster.kill_shard(0)
            cluster.kill_shard(1)
            with pytest.raises(ClusterError):
                coord.query(gid, PATTERNS["3CF"], use_cache=False)
            dump = tmp_path / "flight-coordinator-query-failed.json"
            assert dump.exists()
