"""Configuration presets and simulation-report accounting."""

import pytest

from repro.core import (
    fingers_config,
    flexminer_config,
    shogun_config,
    xset_default,
)
from repro.sim.report import SimReport


class TestPresets:
    def test_xset_matches_table2(self):
        cfg = xset_default()
        assert (cfg.num_pes, cfg.sius_per_pe) == (16, 4)
        assert cfg.siu_kind == "order-aware"
        assert cfg.scheduler == "barrier-free"
        assert cfg.bitmap_width == 8
        assert cfg.task_overhead_cycles == 0

    def test_flexminer_as_published(self):
        cfg = flexminer_config()
        assert cfg.num_pes == 40
        assert cfg.sius_per_pe == 1
        assert cfg.siu_kind == "merge"
        assert cfg.scheduler == "dfs"
        # 4-channel DDR4-2666 ≈ 85 GB/s
        assert cfg.dram.peak_bandwidth_gbps == pytest.approx(85.2, abs=0.5)

    def test_fingers_as_published(self):
        cfg = fingers_config()
        assert cfg.num_pes == 20
        assert cfg.scheduler == "pseudo-dfs"
        assert cfg.scheduler_params["window"] == 8

    def test_shogun_as_published(self):
        cfg = shogun_config()
        assert cfg.num_pes == 20
        assert cfg.scheduler == "shogun"

    def test_baselines_have_task_overhead(self):
        for factory in (flexminer_config, fingers_config, shogun_config):
            assert factory().task_overhead_cycles > 0

    def test_scheduler_kwargs_dfs_lanes(self):
        cfg = xset_default(scheduler="dfs")
        assert cfg.scheduler_kwargs()["lanes"] == cfg.sius_per_pe

    def test_scheduler_kwargs_barrier_free_capacity(self):
        kwargs = xset_default().scheduler_kwargs()
        assert kwargs["num_task_sets"] == 96
        assert kwargs["task_set_width"] == 4

    def test_explicit_params_win(self):
        cfg = xset_default(
            scheduler="dfs", scheduler_params={"lanes": 2}
        )
        assert cfg.scheduler_kwargs()["lanes"] == 2

    def test_with_overrides_is_pure(self):
        base = xset_default()
        derived = base.with_overrides(num_pes=2)
        assert base.num_pes == 16 and derived.num_pes == 2

    def test_memory_config_propagates(self):
        cfg = xset_default(private_kb=64, shared_mb=2.0, num_pes=4)
        mem = cfg.memory_config()
        assert mem.private_kb == 64
        assert mem.shared_mb == 2.0
        assert mem.num_pes == 4


class TestSimReport:
    def test_seconds_includes_host(self):
        r = SimReport(cycles=1e6, host_cycles=1e6, frequency_ghz=1.0)
        assert r.seconds == pytest.approx(2e-3)

    def test_frequency_scales_seconds(self):
        slow = SimReport(cycles=1e6, frequency_ghz=0.5)
        fast = SimReport(cycles=1e6, frequency_ghz=2.0)
        assert slow.seconds == 4 * fast.seconds

    def test_utilization_zero_cases(self):
        assert SimReport().siu_utilization == 0.0
        assert SimReport(cycles=100, num_sius=0).siu_utilization == 0.0

    def test_utilization(self):
        r = SimReport(cycles=100.0, siu_busy_cycles=150.0, num_sius=2)
        assert r.siu_utilization == pytest.approx(0.75)

    def test_dram_bandwidth(self):
        r = SimReport(cycles=1000.0, dram_bytes=64_000, frequency_ghz=1.0)
        assert r.dram_bandwidth_gbps == pytest.approx(64.0)

    def test_bandwidth_empty_run(self):
        assert SimReport().dram_bandwidth_gbps == 0.0


class TestRootPartitioning:
    def test_invalid_mode_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            xset_default(root_partition="random")

    def test_same_counts_both_modes(self):
        from repro.graph import powerlaw_graph
        from repro.patterns import PATTERNS, build_plan
        from repro.sim import run_on_soc

        g = powerlaw_graph(150, 6.0, 50, seed=3, name="rp")
        plan = build_plan(PATTERNS["3CF"])
        rr = run_on_soc(g, plan, xset_default())
        db = run_on_soc(
            g, plan,
            xset_default(root_partition="degree-balanced", name="db"),
        )
        assert rr.embeddings == db.embeddings

    def test_degree_balanced_spreads_hubs(self):
        from repro.graph import powerlaw_graph
        from repro.patterns import PATTERNS, build_plan
        from repro.sim import AcceleratorSim

        g = powerlaw_graph(200, 6.0, 80, seed=4, name="rp2"
                           ).relabeled_by_degree()
        plan = build_plan(PATTERNS["3CF"])
        sim = AcceleratorSim(
            g, plan,
            xset_default(num_pes=4, root_partition="degree-balanced",
                         name="db4"),
        )
        sim._distribute_roots(None)
        loads = [
            sum(
                g.degree(t.vertex)
                for ts in pe.scheduler._levels[1]
                for t in ts.pending
            )
            for pe in sim._pes
        ]
        assert max(loads) <= 1.5 * (sum(loads) / len(loads)) + 100


class TestEngineValidation:
    """`SystemConfig.engine` is validated eagerly, not deep inside a run."""

    def test_constructor_rejects_unknown_engine(self):
        from repro.core import SystemConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError) as err:
            SystemConfig(engine="nope")
        # the error names every registered backend
        from repro.engine import available_engines

        for name in available_engines():
            assert name in str(err.value)

    def test_with_overrides_rejects_unknown_engine(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown execution engine"):
            xset_default().with_overrides(engine="nope")

    def test_valid_engines_accepted(self):
        from repro.engine import available_engines

        for name in available_engines():
            assert xset_default().with_overrides(engine=name).engine == name


class TestCacheKey:
    def test_hashable_and_stable(self):
        key = xset_default().cache_key()
        assert hash(key) == hash(xset_default().cache_key())

    def test_any_knob_changes_key(self):
        base = xset_default()
        for override in (
            {"engine": "batched"},
            {"num_pes": 8},
            {"scheduler_params": {"window": 4}},
            {"shared_mb": 2.0},
        ):
            assert base.with_overrides(**override).cache_key() != \
                base.cache_key(), override
