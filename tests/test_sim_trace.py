"""Tests for the activity-trace facility."""

import pytest

from repro.core import xset_default
from repro.graph import erdos_renyi
from repro.patterns import PATTERNS, build_plan
from repro.sim import AcceleratorSim, ActivityTrace, TraceEvent


@pytest.fixture(scope="module")
def traced_sim():
    g = erdos_renyi(80, 8.0, seed=4)
    sim = AcceleratorSim(
        g, build_plan(PATTERNS["3CF"]), xset_default(num_pes=4),
        collect_trace=True,
    )
    report = sim.run()
    return sim, report


class TestCollection:
    def test_one_event_per_task(self, traced_sim):
        sim, report = traced_sim
        assert len(sim.trace.events) == report.tasks

    def test_events_within_makespan(self, traced_sim):
        sim, report = traced_sim
        assert sim.trace.makespan <= report.cycles + 1e-6
        for e in sim.trace.events:
            assert 0 <= e.start < e.end

    def test_disabled_by_default(self):
        g = erdos_renyi(20, 4.0, seed=1)
        sim = AcceleratorSim(
            g, build_plan(PATTERNS["3CF"]), xset_default(num_pes=2)
        )
        sim.run()
        assert sim.trace is None

    def test_level_histogram_matches_report(self, traced_sim):
        sim, report = traced_sim
        hist = sim.trace.level_histogram()
        assert sum(hist.values()) == report.tasks
        assert set(hist) == {1, 2}  # triangle plan depth


class TestAnalyses:
    def test_utilization_bounded(self, traced_sim):
        sim, _ = traced_sim
        timeline = sim.trace.utilization_timeline(bins=20)
        assert timeline.shape == (20,)
        assert (timeline >= 0).all() and (timeline <= 1).all()

    def test_busy_cycles_by_level(self, traced_sim):
        sim, report = traced_sim
        busy = sim.trace.level_busy_cycles()
        # per-event durations include pipeline tails, so the trace total is
        # at least the occupancy-based busy counter
        assert sum(busy.values()) >= report.siu_busy_cycles * 0.5

    def test_ascii_renderings(self, traced_sim):
        sim, _ = traced_sim
        art = sim.trace.utilization_ascii(bins=30, height=4)
        assert "cycles" in art
        gantt = sim.trace.gantt_ascii(width=30, max_pes=2)
        assert gantt.count("PE") == 2

    def test_empty_trace(self):
        t = ActivityTrace(num_pes=1, sius_per_pe=1)
        assert t.makespan == 0.0
        assert t.gantt_ascii() == "(empty trace)"
        assert (t.utilization_timeline(10) == 0).all()

    def test_event_duration(self):
        e = TraceEvent(pe=0, level=1, start=5.0, end=9.0)
        assert e.duration == 4.0
