"""Smoke tests for the example applications.

Examples are user-facing entry points; each is executed in-process with its
workload shrunk (via CLI args where supported) and checked for successful
completion and the expected headline output.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_social_network_motifs(self, capsys):
        out = run_example(
            "social_network_motifs.py", ["--scale", "0.08"], capsys
        )
        assert "3-motif census" in out
        assert "barrier-free" in out

    def test_design_space_exploration(self, capsys):
        out = run_example(
            "design_space_exploration.py", ["--scale", "0.08"], capsys
        )
        assert "SIU design space" in out
        assert "PE scaling" in out

    def test_dynamic_graph_monitoring(self, capsys):
        out = run_example(
            "dynamic_graph_monitoring.py", ["--updates", "6"], capsys
        )
        assert "full recount agrees" in out

    def test_traced_query(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        out = run_example(
            "traced_query.py",
            ["--scale", "0.05", "--out", str(out_file)],
            capsys,
        )
        assert "per-level work" in out
        assert "ui.perfetto.dev" in out
        assert out_file.exists()

    def test_examples_importable(self):
        """Every example compiles (no syntax errors, imports resolve)."""
        import py_compile

        for path in sorted(EXAMPLES.glob("*.py")):
            py_compile.compile(str(path), doraise=True)
