"""Simulator integration tests: functional exactness + architectural sanity."""

import pytest

from repro.core import (
    XSetAccelerator,
    fingers_config,
    flexminer_config,
    shogun_config,
    xset_default,
)
from repro.graph import erdos_renyi
from repro.patterns import PATTERNS, build_plan, count_embeddings
from repro.sim import AcceleratorSim, run_on_soc

ALL_CONFIGS = {
    "xset": xset_default(),
    "flexminer": flexminer_config(),
    "fingers": fingers_config(),
    "shogun": shogun_config(),
    "xset-dfs": xset_default(scheduler="dfs", name="xset-dfs"),
    "xset-pdfs": xset_default(
        scheduler="pseudo-dfs", scheduler_params={"window": 4},
        name="xset-pdfs",
    ),
    "xset-sma": xset_default(siu_kind="sma", name="xset-sma"),
    "xset-merge": xset_default(
        siu_kind="merge", segment_width=1, name="xset-merge"
    ),
    "xset-nobitmap": xset_default(bitmap_width=0, name="xset-nobitmap"),
}


class TestFunctionalExactness:
    """The load-bearing invariant: timing models never change counts."""

    @pytest.mark.parametrize("cfg_name", sorted(ALL_CONFIGS))
    @pytest.mark.parametrize("pattern", ["3CF", "4CF", "TT", "CYC", "DIA"])
    def test_counts_match_reference(self, cfg_name, pattern, medium_er):
        plan = build_plan(PATTERNS[pattern])
        want = count_embeddings(medium_er, plan).embeddings
        report = run_on_soc(medium_er, plan, ALL_CONFIGS[cfg_name])
        assert report.embeddings == want

    def test_counts_on_skewed_graph(self, skewed_graph):
        for pattern in ("3CF", "DIA"):
            plan = build_plan(PATTERNS[pattern])
            want = count_embeddings(skewed_graph, plan).embeddings
            report = run_on_soc(skewed_graph, plan, xset_default())
            assert report.embeddings == want

    def test_empty_graph(self):
        from repro.graph import CSRGraph

        g = CSRGraph.empty(10, name="empty")
        report = run_on_soc(g, build_plan(PATTERNS["3CF"]), xset_default())
        assert report.embeddings == 0
        assert report.cycles >= 0


class TestDeterminism:
    def test_same_run_same_cycles(self, medium_er):
        plan = build_plan(PATTERNS["3CF"])
        a = run_on_soc(medium_er, plan, xset_default())
        b = run_on_soc(medium_er, plan, xset_default())
        assert a.cycles == b.cycles
        assert a.comparisons == b.comparisons


class TestArchitecturalSanity:
    def test_utilization_in_range(self, medium_er):
        report = run_on_soc(
            medium_er, build_plan(PATTERNS["3CF"]), xset_default()
        )
        assert 0.0 < report.siu_utilization <= 1.0

    def test_single_lane_dfs_uses_one_siu(self, medium_er):
        """A one-lane DFS walk cannot exceed 1/num_sius utilisation."""
        cfg = xset_default(
            scheduler="dfs", scheduler_params={"lanes": 1}, name="dfs1"
        )
        report = run_on_soc(medium_er, build_plan(PATTERNS["3CF"]), cfg)
        assert report.siu_utilization <= 1.0 / cfg.sius_per_pe + 0.01

    def test_dfs_lanes_add_subtree_parallelism(self, skewed_graph):
        plan = build_plan(PATTERNS["3CF"])
        one = run_on_soc(
            skewed_graph, plan,
            xset_default(scheduler="dfs", scheduler_params={"lanes": 1},
                         name="dfs1"),
        )
        four = run_on_soc(
            skewed_graph, plan,
            xset_default(scheduler="dfs", scheduler_params={"lanes": 4},
                         name="dfs4"),
        )
        assert four.cycles < one.cycles
        assert four.embeddings == one.embeddings

    def test_barrier_free_not_slower_than_dfs(self, skewed_graph):
        plan = build_plan(PATTERNS["4CF"])
        bf = run_on_soc(skewed_graph, plan, xset_default())
        dfs = run_on_soc(
            skewed_graph, plan, xset_default(scheduler="dfs", name="dfs")
        )
        assert bf.cycles < dfs.cycles

    def test_scheduler_ordering_on_irregular_graph(self, skewed_graph):
        """barrier-free <= pseudo-dfs <= dfs in cycles (paper Fig. 16)."""
        plan = build_plan(PATTERNS["TT"])
        cycles = {}
        for sched, params in (
            ("barrier-free", {}),
            ("pseudo-dfs", {"window": 4}),
            ("dfs", {}),
        ):
            cfg = xset_default(
                scheduler=sched, scheduler_params=params, name=sched
            )
            cycles[sched] = run_on_soc(skewed_graph, plan, cfg).cycles
        assert cycles["barrier-free"] <= cycles["pseudo-dfs"]
        assert cycles["pseudo-dfs"] <= cycles["dfs"]

    def test_more_pes_is_faster(self, skewed_graph):
        plan = build_plan(PATTERNS["3CF"])
        one = run_on_soc(skewed_graph, plan, xset_default(num_pes=1))
        sixteen = run_on_soc(skewed_graph, plan, xset_default(num_pes=16))
        assert sixteen.cycles < one.cycles

    def test_memory_stats_populated(self, medium_er):
        report = run_on_soc(
            medium_er, build_plan(PATTERNS["3CF"]), xset_default()
        )
        assert report.private_hits + report.private_misses > 0
        assert report.dram_bytes > 0

    def test_task_counts_match_reference(self, medium_er):
        plan = build_plan(PATTERNS["4CF"])
        stats = count_embeddings(medium_er, plan)
        report = run_on_soc(medium_er, plan, xset_default())
        assert report.tasks == stats.tasks

    def test_wall_time_recorded(self, medium_er):
        report = run_on_soc(
            medium_er, build_plan(PATTERNS["3CF"]), xset_default()
        )
        assert report.wall_seconds > 0

    def test_summary_string(self, medium_er):
        report = run_on_soc(
            medium_er, build_plan(PATTERNS["3CF"]), xset_default()
        )
        text = report.summary()
        assert "3CF" in text and "embeddings" in text


class TestStartTasks:
    def test_explicit_root_subset(self, medium_er):
        from repro.sched.task import SimTask

        plan = build_plan(PATTERNS["3CF"])
        sim = AcceleratorSim(medium_er, plan, xset_default())
        tasks = [
            SimTask(level=1, vertex=v, parent=None)
            for v in range(medium_er.num_vertices // 2)
        ]
        partial = sim.run(tasks)
        full = run_on_soc(medium_er, plan, xset_default())
        assert partial.embeddings <= full.embeddings


class TestEnumerateModePlans:
    def test_enumerate_plan_counts_match(self, medium_er):
        """Enumerate-mode plans exercise the reuse_from leaf path in HW."""
        plan = build_plan(PATTERNS["DIA"], collection="enumerate")
        want = count_embeddings(medium_er, plan).embeddings
        report = run_on_soc(medium_er, plan, xset_default())
        assert report.embeddings == want
        # enumerate spawns the collapsed levels: strictly more tasks
        collapsed = run_on_soc(
            medium_er, build_plan(PATTERNS["DIA"]), xset_default()
        )
        assert report.tasks > collapsed.tasks
