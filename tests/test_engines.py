"""Engine layer tests: registry, config plumbing and backend equivalence.

The contract of the engine layer is that every registered backend computes
the *same embedding counts* — backends differ only in how they model time.
The equivalence tests here pin that down for every pattern in ``PATTERNS``
over random graphs, against the software reference executor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SystemConfig, XSetAccelerator, xset_default
from repro.errors import ConfigError
from repro.engine import Engine, available_engines, get_engine
from repro.engine.functional import FrontierExpander, expand_frontier
from repro.graph import erdos_renyi, powerlaw_graph
from repro.patterns import PATTERNS, build_plan
from repro.patterns.executor import count_embeddings
from repro.sim.report import SimReport


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_builtin_engines_listed(self):
        names = available_engines()
        assert "event" in names
        assert "batched" in names
        assert "codegen" in names

    def test_get_engine_returns_singletons(self):
        assert get_engine("event") is get_engine("event")
        assert get_engine("batched") is get_engine("batched")
        assert get_engine("codegen") is get_engine("codegen")

    def test_engine_names_match(self):
        for name in available_engines():
            assert get_engine(name).name == name

    def test_unknown_engine_raises(self):
        with pytest.raises(ConfigError, match="unknown execution engine"):
            get_engine("quantum")

    def test_engines_implement_protocol(self):
        for name in available_engines():
            assert isinstance(get_engine(name), Engine)


# -- config / API / CLI plumbing ---------------------------------------------


class TestSelection:
    def test_default_engine_is_event(self):
        assert xset_default().engine == "event"

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ConfigError):
            SystemConfig(engine="nope")

    def test_config_override(self):
        cfg = xset_default(engine="batched")
        assert cfg.engine == "batched"

    def test_accelerator_engine_kwarg(self):
        accel = XSetAccelerator(engine="batched")
        assert accel.config.engine == "batched"

    def test_cli_engine_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["count", "--engine", "batched"]
        )
        assert args.engine == "batched"

    def test_cli_rejects_unknown_engine(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--engine", "warp"])


# -- backend equivalence ------------------------------------------------------


def _count_with(engine_name: str, graph, plan) -> SimReport:
    cfg = xset_default(engine=engine_name)
    report = get_engine(engine_name).run(graph, plan, cfg)
    assert isinstance(report, SimReport)
    return report


#: the full backend matrix — every test below must hold for all of them
ENGINES = ("event", "batched", "codegen")

#: the fast backends, safe to run against the larger graph fixtures
FAST_ENGINES = ("batched", "codegen")


class TestEquivalence:
    """Every backend must match the reference count on every pattern."""

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_matches_reference_er(self, engine, name, medium_er):
        plan = build_plan(PATTERNS[name])
        want = count_embeddings(medium_er, plan).embeddings
        got = _count_with(engine, medium_er, plan).embeddings
        assert got == want

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_matches_reference_skewed(self, engine, name, skewed_graph):
        plan = build_plan(PATTERNS[name])
        want = count_embeddings(skewed_graph, plan).embeddings
        got = _count_with(engine, skewed_graph, plan).embeddings
        assert got == want

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_all_engines_agree(self, name, small_er):
        plan = build_plan(PATTERNS[name])
        counts = {
            engine: _count_with(engine, small_er, plan).embeddings
            for engine in ENGINES
        }
        assert len(set(counts.values())) == 1, counts

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs_triangle_family(self, engine, seed):
        g = erdos_renyi(45, 7.0, seed=seed, name=f"er45-{seed}")
        for name in ("3CF", "4CF", "TT", "DIA"):
            plan = build_plan(PATTERNS[name])
            want = count_embeddings(g, plan).embeddings
            assert _count_with(engine, g, plan).embeddings == want

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_powerlaw_hub_graph(self, engine):
        g = powerlaw_graph(150, avg_degree=5.0, max_degree=60, seed=9,
                           triangle_boost=0.4, name="pl150")
        for name in sorted(PATTERNS):
            plan = build_plan(PATTERNS[name])
            want = count_embeddings(g, plan).embeddings
            assert _count_with(engine, g, plan).embeddings == want

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_graph(self, engine):
        from repro.graph import CSRGraph

        g = CSRGraph.empty(8)
        for name in ("3CF", "WEDGE"):
            plan = build_plan(PATTERNS[name])
            assert _count_with(engine, g, plan).embeddings == 0

    def test_codegen_cycles_match_batched(self, medium_er):
        """Same analytic aggregates → byte-identical cycle totals."""
        for name in sorted(PATTERNS):
            plan = build_plan(PATTERNS[name])
            ba = _count_with("batched", medium_er, plan)
            cg = _count_with("codegen", medium_er, plan)
            assert cg.cycles == ba.cycles, name
            assert cg.words_in == ba.words_in, name
            assert cg.tasks == ba.tasks, name


class TestBatchedReport:
    def test_report_fields_populated(self, medium_er):
        plan = build_plan(PATTERNS["3CF"])
        report = _count_with("batched", medium_er, plan)
        assert report.cycles > 0
        assert report.tasks > 0
        assert report.words_in > 0
        assert report.dram_bytes > 0
        assert report.wall_seconds >= 0

    def test_root_chunking_preserves_counts(self, skewed_graph):
        from repro.engine import batched as mod

        plan = build_plan(PATTERNS["TT"])
        want = count_embeddings(skewed_graph, plan).embeddings
        old = mod.ROOT_CHUNK
        try:
            mod.ROOT_CHUNK = 13  # force many partial-root chunks
            got = _count_with("batched", skewed_graph, plan).embeddings
        finally:
            mod.ROOT_CHUNK = old
        assert got == want


class TestFrontierExpander:
    def test_expand_frontier_levels(self, medium_er):
        plan = build_plan(PATTERNS["3CF"])
        levels = expand_frontier(medium_er, plan)
        assert [lv.level for lv in levels] == [1, 2]
        want = count_embeddings(medium_er, plan).embeddings
        assert levels[-1].count == want

    def test_root_label_filtering(self):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        g.labels = np.array([0, 1, 0, 1])
        plan = build_plan(PATTERNS["WEDGE"])
        ex = FrontierExpander(g, plan)
        roots = ex.roots()
        assert roots.shape == (4, 1)

    def test_adjacency_oracle_fallback(self, small_er):
        """Bitset and edge-key oracles must answer identically."""
        from repro.setops.bulk import (
            bulk_adjacency,
            bulk_adjacency_bits,
            edge_keys,
            packed_adjacency,
        )

        rng = np.random.default_rng(7)
        u = rng.integers(0, small_er.num_vertices, 500)
        v = rng.integers(0, small_er.num_vertices, 500)
        bits = packed_adjacency(small_er)
        assert bits is not None
        keys = edge_keys(small_er)
        got_bits = bulk_adjacency_bits(bits, u, v)
        got_keys = bulk_adjacency(keys, small_er.num_vertices, u, v)
        assert np.array_equal(got_bits, got_keys)

    def test_packed_adjacency_size_cap(self, small_er):
        from repro.setops.bulk import packed_adjacency

        assert packed_adjacency(small_er, max_vertices=10) is None
