"""Property tests for the reference sorted-set kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.setops import (
    difference_sorted,
    galloping_comparison_count,
    intersect_count,
    intersect_sorted,
    merge_comparison_count,
)

sorted_sets = st.lists(
    st.integers(min_value=0, max_value=300), max_size=80, unique=True
).map(lambda xs: np.asarray(sorted(xs), dtype=np.int64))


@given(a=sorted_sets, b=sorted_sets)
@settings(max_examples=120, deadline=None)
def test_intersect_matches_numpy(a, b):
    assert np.array_equal(intersect_sorted(a, b), np.intersect1d(a, b))


@given(a=sorted_sets, b=sorted_sets)
@settings(max_examples=120, deadline=None)
def test_difference_matches_numpy(a, b):
    assert np.array_equal(difference_sorted(a, b), np.setdiff1d(a, b))


@given(a=sorted_sets, b=sorted_sets)
@settings(max_examples=80, deadline=None)
def test_intersect_count_consistent(a, b):
    assert intersect_count(a, b) == intersect_sorted(a, b).size


@given(a=sorted_sets)
@settings(max_examples=30, deadline=None)
def test_self_identities(a):
    assert np.array_equal(intersect_sorted(a, a), a)
    assert difference_sorted(a, a).size == 0


@given(a=sorted_sets, b=sorted_sets)
@settings(max_examples=60, deadline=None)
def test_partition_identity(a, b):
    """a = (a ∩ b) ∪ (a − b), disjointly."""
    inter = intersect_sorted(a, b)
    diff = difference_sorted(a, b)
    assert inter.size + diff.size == a.size
    assert np.array_equal(np.union1d(inter, diff), a)


def test_empty_inputs():
    e = np.array([], dtype=np.int64)
    x = np.array([1, 2, 3])
    assert intersect_sorted(e, x).size == 0
    assert intersect_sorted(x, e).size == 0
    assert np.array_equal(difference_sorted(x, e), x)
    assert difference_sorted(e, x).size == 0


class TestComparisonCounts:
    def test_merge_count_disjoint(self):
        # disjoint interleaved sets: every element compared
        assert merge_comparison_count(5, 5, 0) == 9

    def test_merge_count_identical(self):
        assert merge_comparison_count(6, 6, 6) == 6

    def test_merge_count_empty(self):
        assert merge_comparison_count(0, 9, 0) == 0
        assert merge_comparison_count(9, 0, 0) == 0

    def test_galloping_scales_with_log(self):
        small = galloping_comparison_count(10, 100)
        big = galloping_comparison_count(10, 100_000)
        assert big > small
        assert big <= 10 * 18

    def test_galloping_empty(self):
        assert galloping_comparison_count(0, 50) == 0
