"""Tests for graph statistics, edge-list I/O, and the dataset registry."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    DATASETS,
    CSRGraph,
    dataset_names,
    dataset_table,
    degree_skewness,
    graph_stats,
    load_dataset,
    load_edge_list,
    save_edge_list,
)


class TestStats:
    def test_skewness_symmetric_is_zero(self):
        assert degree_skewness(np.array([1, 2, 3, 4, 5])) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_skewness_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(0)
        x = rng.exponential(2.0, size=400)
        assert degree_skewness(x) == pytest.approx(
            float(scipy_stats.skew(x, bias=False)), rel=1e-9
        )

    def test_skewness_degenerate(self):
        assert degree_skewness(np.array([2, 2])) == 0.0
        assert degree_skewness(np.array([3, 3, 3, 3])) == 0.0

    def test_graph_stats_avg_degree_convention(self, toy_graph):
        st = graph_stats(toy_graph)
        # Table 3 reports Avg Deg as m/n
        assert st.avg_degree == pytest.approx(
            toy_graph.num_edges / toy_graph.num_vertices
        )
        assert st.max_degree == int(toy_graph.degrees.max())

    def test_stats_row_formatting(self, toy_graph):
        row = graph_stats(toy_graph).row()
        assert "fig1a" in row


class TestIO:
    def test_roundtrip(self, tmp_path, small_er):
        path = tmp_path / "g.txt"
        save_edge_list(small_er, path)
        loaded = load_edge_list(path)
        assert loaded.num_edges == small_er.num_edges
        assert set(loaded.edges()) == set(small_er.edges())

    def test_gzip_roundtrip(self, tmp_path, toy_graph):
        path = tmp_path / "g.txt.gz"
        save_edge_list(toy_graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_edges == toy_graph.num_edges

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# comment\n\n0 1\n% other comment\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_ids_compacted(self, tmp_path):
        path = tmp_path / "sparse_ids.txt"
        path.write_text("100 900\n900 5000\n")
        g = load_edge_list(path)
        assert g.num_vertices == 3

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_negative_id_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "neg.txt"
        path.write_text("0 1\n1 -2\n")
        with pytest.raises(GraphFormatError, match=r"neg\.txt:2.*negative"):
            load_edge_list(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(GraphFormatError, match="no edges"):
            load_edge_list(path)

    def test_comment_only_file_rejected(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# a header\n% nothing else\n\n")
        with pytest.raises(GraphFormatError, match="no edges"):
            load_edge_list(path)

    def test_snap_header_edge_mismatch_rejected(self, tmp_path):
        # declares 5 edges, contains 2 — a truncated download
        path = tmp_path / "trunc.txt"
        path.write_text("# Nodes: 3 Edges: 5\n0 1\n1 2\n")
        with pytest.raises(GraphFormatError, match="declares 5 edges"):
            load_edge_list(path)

    def test_save_header_vertex_mismatch_rejected(self, tmp_path):
        path = tmp_path / "under.txt"
        path.write_text("# g: 2 vertices, 3 edges\n0 1\n1 2\n2 0\n")
        with pytest.raises(GraphFormatError, match="declares 2 vertices"):
            load_edge_list(path)

    def test_consistent_snap_header_accepted(self, tmp_path):
        # duplicates, reversals and self-loops collapse to 2 unique edges
        path = tmp_path / "ok.txt"
        path.write_text(
            "# Nodes: 3 Edges: 2\n0 1\n1 0\n1 2\n1 1\n"
        )
        g = load_edge_list(path)
        assert g.num_edges == 2
        assert g.num_vertices == 3


class TestDatasets:
    def test_registry_has_seven(self):
        assert len(DATASETS) == 7
        assert dataset_names() == ["PP", "WV", "AS", "MI", "YT", "PA", "LJ"]

    def test_load_small_scale(self):
        g = load_dataset("PP", scale=0.1)
        assert isinstance(g, CSRGraph)
        assert g.name == "PP"
        assert g.num_vertices >= 64

    def test_caching(self):
        a = load_dataset("WV", scale=0.1)
        b = load_dataset("WV", scale=0.1)
        assert a is b

    def test_case_insensitive_key(self):
        assert load_dataset("pp", scale=0.1).name == "PP"

    def test_degree_ordered(self):
        g = load_dataset("YT", scale=0.1)
        degs = g.degrees
        assert all(degs[i] >= degs[i + 1] for i in range(len(degs) - 1))

    def test_avg_degree_tracks_spec(self):
        spec = DATASETS["WV"]
        g = load_dataset("WV", scale=0.5)
        st = graph_stats(g)
        assert st.avg_degree == pytest.approx(spec.avg_degree, rel=0.35)

    def test_skew_ordering_matches_paper(self):
        """YT must be the most skewed stand-in, as in Table 3."""
        table = {s.name: s for s in dataset_table(scale=0.25)}
        assert table["YT"].skew == max(s.skew for s in table.values())

    def test_table_rows_in_order(self):
        names = [s.name for s in dataset_table(scale=0.1)]
        assert names == dataset_names()
